// Micro-benchmarks (google-benchmark): the hot paths of the pipeline —
// wire codec, radix trie, decision process, classifier, dampener, and the
// end-to-end simulator event rate.
#include <benchmark/benchmark.h>

#include <vector>

#include "bench_common.h"

#include "bgp/decision.h"
#include "bgp/message.h"
#include "core/classifier.h"
#include "netbase/radix_trie.h"
#include "netbase/rng.h"
#include "workload/scenario.h"

namespace {

using namespace iri;

bgp::UpdateMessage MakeUpdate(int nlri, int withdrawn) {
  bgp::UpdateMessage u;
  u.attributes.as_path = bgp::AsPath::Sequence({701, 1239, 3561});
  u.attributes.next_hop = IPv4Address(198, 32, 1, 10);
  for (int i = 0; i < nlri; ++i) {
    u.nlri.push_back(
        Prefix(IPv4Address((204u << 24) | (static_cast<std::uint32_t>(i) << 8)), 24));
  }
  for (int i = 0; i < withdrawn; ++i) {
    u.withdrawn.push_back(
        Prefix(IPv4Address((192u << 24) | (static_cast<std::uint32_t>(i) << 8)), 24));
  }
  return u;
}

void BM_EncodeUpdate(benchmark::State& state) {
  const auto u = MakeUpdate(static_cast<int>(state.range(0)), 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bgp::Encode(u));
  }
  state.SetItemsProcessed(state.iterations() *
                          (state.range(0) + 10));
}
BENCHMARK(BM_EncodeUpdate)->Arg(1)->Arg(50)->Arg(400);

void BM_DecodeUpdate(benchmark::State& state) {
  const auto wire = bgp::Encode(MakeUpdate(static_cast<int>(state.range(0)), 10));
  for (auto _ : state) {
    benchmark::DoNotOptimize(bgp::Decode(wire));
  }
  state.SetItemsProcessed(state.iterations() * (state.range(0) + 10));
}
BENCHMARK(BM_DecodeUpdate)->Arg(1)->Arg(50)->Arg(400);

void BM_TrieInsertLookup(benchmark::State& state) {
  Rng rng(1);
  std::vector<Prefix> prefixes;
  for (int i = 0; i < state.range(0); ++i) {
    prefixes.push_back(Prefix(
        IPv4Address(static_cast<std::uint32_t>(rng.Next())),
        static_cast<std::uint8_t>(rng.Range(16, 24))));
  }
  for (auto _ : state) {
    RadixTrie<int> trie;
    for (const auto& p : prefixes) trie.Insert(p, 1);
    int hits = 0;
    for (const auto& p : prefixes) hits += trie.Find(p) != nullptr;
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 2);
}
BENCHMARK(BM_TrieInsertLookup)->Arg(1000)->Arg(42000);

void BM_TrieLongestMatch(benchmark::State& state) {
  Rng rng(2);
  RadixTrie<int> trie;
  for (int i = 0; i < 42000; ++i) {
    trie.Insert(Prefix(IPv4Address(static_cast<std::uint32_t>(rng.Next())),
                       static_cast<std::uint8_t>(rng.Range(8, 24))),
                i);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        trie.LongestMatch(IPv4Address(static_cast<std::uint32_t>(rng.Next()))));
  }
}
BENCHMARK(BM_TrieLongestMatch);

void BM_DecisionProcess(benchmark::State& state) {
  Rng rng(3);
  std::vector<bgp::Candidate> candidates;
  for (int i = 0; i < state.range(0); ++i) {
    bgp::Candidate c;
    c.peer = static_cast<bgp::PeerId>(i);
    c.peer_router_id = IPv4Address(static_cast<std::uint32_t>(rng.Next()));
    c.attributes.as_path = bgp::AsPath::Sequence(
        {static_cast<bgp::Asn>(rng.Range(1, 1000)),
         static_cast<bgp::Asn>(rng.Range(1, 1000))});
    c.attributes.med = static_cast<std::uint32_t>(rng.Below(100));
    candidates.push_back(std::move(c));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(bgp::SelectBest(candidates));
  }
}
BENCHMARK(BM_DecisionProcess)->Arg(2)->Arg(8)->Arg(32);

void BM_ClassifierThroughput(benchmark::State& state) {
  Rng rng(4);
  std::vector<core::UpdateEvent> events;
  for (int i = 0; i < 10000; ++i) {
    core::UpdateEvent ev;
    ev.time = TimePoint::Origin() + Duration::Seconds(i);
    ev.peer = static_cast<bgp::PeerId>(rng.Below(20));
    ev.prefix = Prefix(
        IPv4Address((204u << 24) | static_cast<std::uint32_t>(rng.Below(4000) << 8)),
        24);
    ev.is_withdraw = rng.Bernoulli(0.5);
    if (!ev.is_withdraw) {
      ev.attributes.as_path = bgp::AsPath::Sequence(
          {static_cast<bgp::Asn>(100 + ev.peer)});
      ev.attributes.next_hop = IPv4Address(198, 32, 1, 1);
    }
    events.push_back(std::move(ev));
  }
  core::Classifier classifier;
  for (auto _ : state) {
    for (const auto& ev : events) {
      benchmark::DoNotOptimize(classifier.Classify(ev));
    }
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_ClassifierThroughput);

void BM_ScenarioSimulatedHour(benchmark::State& state) {
  for (auto _ : state) {
    workload::ScenarioConfig cfg;
    cfg.topology.scale = 1.0 / 128;
    cfg.topology.num_providers = 8;
    cfg.duration = Duration::Hours(1);
    // The headline number keeps streaming telemetry off: with IRI_TRACE=OFF
    // this is the configuration the <=2% regression gate compares.
    cfg.series_flush_interval = Duration();
    workload::ExchangeScenario scenario(cfg);
    scenario.Run();
    benchmark::DoNotOptimize(scenario.monitor().events_seen());
  }
}
BENCHMARK(BM_ScenarioSimulatedHour)->Unit(benchmark::kMillisecond);

// Same scenario with the series flush + health detectors enabled: the
// difference against BM_ScenarioSimulatedHour is the all-in telemetry cost.
void BM_ScenarioSimulatedHourTelemetry(benchmark::State& state) {
  for (auto _ : state) {
    workload::ScenarioConfig cfg;
    cfg.topology.scale = 1.0 / 128;
    cfg.topology.num_providers = 8;
    cfg.duration = Duration::Hours(1);
    workload::ExchangeScenario scenario(cfg);
    scenario.Run();
    benchmark::DoNotOptimize(scenario.series().records());
  }
}
BENCHMARK(BM_ScenarioSimulatedHourTelemetry)->Unit(benchmark::kMillisecond);

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): unless the caller passes its own
// --benchmark_out, results also land in BENCH_micro_perf.json next to the
// binary, the file tools/bench/compare.py diffs against the committed
// baseline (bench/baseline/BENCH_micro_perf.json).
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  char out_flag[] = "--benchmark_out=BENCH_micro_perf.json";
  char fmt_flag[] = "--benchmark_out_format=json";
  if (!iri::bench::HasArgPrefix(argc, argv, "--benchmark_out=")) {
    args.push_back(out_flag);
    args.push_back(fmt_flag);
  }
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
