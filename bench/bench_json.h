// Shared BENCH_*.json emitter for the bench mains that hand-write their
// artifacts (parallel_scaling, full_paper). micro_perf delegates to
// google-benchmark's own JSON writer; everything else goes through this so
// the shape tools/bench/compare.py parses is produced in exactly one place
// (tests/bench_json_test.cc pins it).
//
// Output discipline: 2-space indent, one field per line, keys in call
// order, fixed-precision doubles — so committed baselines under
// bench/baseline/ diff cleanly run over run.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace iri::bench {

class JsonWriter {
 public:
  JsonWriter() { out_.reserve(512); }

  // `key == nullptr` for array elements and the top-level object. A
  // `compact` object is emitted on a single line (the per-run rows of a
  // "runs" array), everything else one field per line.
  JsonWriter& BeginObject(const char* key = nullptr, bool compact = false) {
    Prefix(key);
    out_ += '{';
    stack_.push_back({'}', compact, false});
    return *this;
  }
  JsonWriter& EndObject() { return Close(); }

  JsonWriter& BeginArray(const char* key = nullptr) {
    Prefix(key);
    out_ += '[';
    stack_.push_back({']', false, false});
    return *this;
  }
  JsonWriter& EndArray() { return Close(); }

  JsonWriter& Field(const char* key, const char* value) {
    Prefix(key);
    out_ += '"';
    out_ += value;
    out_ += '"';
    return *this;
  }
  JsonWriter& Field(const char* key, bool value) {
    Prefix(key);
    out_ += value ? "true" : "false";
    return *this;
  }
  JsonWriter& Field(const char* key, int value) {
    return Field(key, static_cast<long long>(value));
  }
  JsonWriter& Field(const char* key, long long value) {
    Prefix(key);
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", value);
    out_ += buf;
    return *this;
  }
  JsonWriter& Field(const char* key, std::uint64_t value) {
    Prefix(key);
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(value));
    out_ += buf;
    return *this;
  }
  // Doubles are emitted at a caller-chosen fixed precision: full float
  // precision churns every committed baseline byte-for-byte on each rerun.
  JsonWriter& Field(const char* key, double value, int decimals = 3) {
    Prefix(key);
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
    out_ += buf;
    return *this;
  }

  // Valid once every Begin* has been Closed.
  const std::string& str() const { return out_; }

  bool WriteFile(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return false;
    }
    std::fputs(out_.c_str(), f);
    std::fputc('\n', f);
    std::fclose(f);
    return true;
  }

 private:
  struct Level {
    char close;
    bool compact;
    bool has_items;
  };

  void Prefix(const char* key) {
    if (!stack_.empty()) {
      Level& level = stack_.back();
      if (level.compact) {
        if (level.has_items) out_ += ", ";
      } else {
        out_ += level.has_items ? ",\n" : "\n";
        out_.append(2 * stack_.size(), ' ');
      }
      level.has_items = true;
    }
    if (key != nullptr) {
      out_ += '"';
      out_ += key;
      out_ += "\": ";
    }
  }

  JsonWriter& Close() {
    const Level level = stack_.back();
    stack_.pop_back();
    if (!level.compact && level.has_items) {
      out_ += '\n';
      out_.append(2 * stack_.size(), ' ');
    }
    out_ += level.close;
    return *this;
  }

  std::string out_;
  std::vector<Level> stack_;
};

}  // namespace iri::bench
