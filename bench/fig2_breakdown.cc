// Figure 2: breakdown of routing updates by taxonomy class per month
// (April..September 1996 at Mae-East). WWDup is excluded from the figure
// (as in the paper, "so as not to obscure the salient features") but
// reported separately.
//
// Paper shape: AADup and WADup dominate every month; AADiff/WADiff are a
// small minority; volumes grow over the months.
#include "bench_common.h"
#include "core/report.h"
#include "core/stats.h"

int main(int argc, char** argv) {
  using namespace iri;
  auto flags = bench::Flags::Parse(argc, argv, /*days=*/183,
                                   /*scale_denominator=*/96,
                                   /*providers=*/14);
  bench::PrintHeader("Figure 2: monthly breakdown of update categories",
                     flags);

  auto cfg = flags.ToScenarioConfig();
  workload::ExchangeScenario scenario(cfg);
  core::DailyCategoryTally tally;
  scenario.monitor().AddSink(
      [&tally](const core::ClassifiedEvent& ev) { tally.Add(ev); });
  scenario.Run();

  static const char* kMonths[] = {"April", "May",    "June",
                                  "July",  "August", "September"};
  std::vector<std::vector<std::string>> rows;
  std::array<std::uint64_t, core::kNumCategories> grand{};
  for (int month = 0; month * 30 < static_cast<int>(flags.days); ++month) {
    core::CategoryCounts month_counts;
    for (int d = month * 30 + (month == 0 ? 1 : 0);  // skip bootstrap day 0
         d < (month + 1) * 30 && d < static_cast<int>(tally.days().size());
         ++d) {
      const auto& day = tally.days()[static_cast<std::size_t>(d)];
      for (std::size_t c = 0; c < core::kNumCategories; ++c) {
        month_counts.by_category[c] += day.by_category[c];
        grand[c] += day.by_category[c];
      }
    }
    const std::string name =
        month < 6 ? kMonths[month] : "month-" + std::to_string(month);
    rows.push_back(
        {name,
         std::to_string(month_counts.Of(core::Category::kAADiff)),
         std::to_string(month_counts.Of(core::Category::kWADiff)),
         std::to_string(month_counts.Of(core::Category::kWADup)),
         std::to_string(month_counts.Of(core::Category::kAADup)),
         std::to_string(month_counts.Of(core::Category::kInitial)),
         std::to_string(month_counts.Of(core::Category::kWWDup))});
  }
  std::printf("%s\n", core::FormatTable({"month", "AADiff", "WADiff", "WADup",
                                         "AADup", "Uncategorized",
                                         "(WWDup, excluded)"},
                                        rows)
                          .c_str());

  auto of = [&grand](core::Category c) {
    return grand[static_cast<std::size_t>(c)];
  };
  const double dup_total = static_cast<double>(of(core::Category::kAADup) +
                                               of(core::Category::kWADup));
  const double diff_total = static_cast<double>(of(core::Category::kAADiff) +
                                                of(core::Category::kWADiff));
  std::printf("shape checks (paper expectations):\n");
  std::printf("  duplicates (AADup+WADup) vs diffs (AADiff+WADiff): "
              "%.0f vs %.0f  (dups should dominate: %.1fx)\n",
              dup_total, diff_total, dup_total / std::max(1.0, diff_total));
  std::printf("  AADup >= WADup: %llu vs %llu\n",
              static_cast<unsigned long long>(of(core::Category::kAADup)),
              static_cast<unsigned long long>(of(core::Category::kWADup)));
  std::printf("  WWDup (excluded from figure) dwarfs all: %llu\n",
              static_cast<unsigned long long>(of(core::Category::kWWDup)));
  return 0;
}
