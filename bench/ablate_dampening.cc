// §3 ablation: RFC 2439-style route flap dampening at provider borders.
//
// Dampening should cut the flap volume reaching the exchange, at the cost
// the paper warns about: legitimate re-announcements held down (artificial
// unreachability). Both sides of the trade-off are measured.
#include "bench_common.h"
#include "core/report.h"
#include "core/stats.h"

int main(int argc, char** argv) {
  using namespace iri;
  auto flags = bench::Flags::Parse(argc, argv, /*days=*/3,
                                   /*scale_denominator=*/32,
                                   /*providers=*/14);
  bench::PrintHeader("Ablation: route flap dampening at provider borders",
                     flags);

  struct Result {
    core::CategoryCounts counts;
    std::uint64_t damped = 0;
  };
  auto run = [&flags](bool dampen) {
    auto cfg = flags.ToScenarioConfig();
    cfg.providers_dampen = dampen;  // RFC 2439 at the provider edges
    workload::ExchangeScenario scenario(cfg);
    Result result;
    scenario.monitor().AddSink([&result](const core::ClassifiedEvent& ev) {
      result.counts.Add(ev);
    });
    scenario.Run();
    // Damped-update counters accumulate at the provider routers.
    for (int p = 0; p < flags.providers; ++p) {
      result.damped += scenario.provider_router(p).stats().damped_updates;
    }
    return result;
  };

  const Result off = run(false);
  const Result on = run(true);

  std::vector<std::vector<std::string>> rows;
  for (std::size_t i = 0; i < core::kNumCategories; ++i) {
    const auto c = static_cast<core::Category>(i);
    rows.push_back({core::ToString(c), std::to_string(off.counts.Of(c)),
                    std::to_string(on.counts.Of(c))});
  }
  rows.push_back({"TOTAL", std::to_string(off.counts.Total()),
                  std::to_string(on.counts.Total())});
  std::printf("%s\n", core::FormatTable({"category", "dampening-off",
                                         "dampening-on"},
                                        rows)
                          .c_str());
  std::printf("updates suppressed by dampeners at provider borders: %llu\n",
              static_cast<unsigned long long>(on.damped));
  std::printf("instability at the exchange: %llu -> %llu\n",
              static_cast<unsigned long long>(off.counts.Instability()),
              static_cast<unsigned long long>(on.counts.Instability()));
  std::printf("(paper: dampening helps, but \"can introduce artificial "
              "connectivity problems\" — the damped count above is routes "
              "held down, including legitimate re-announcements)\n");
  return 0;
}
