// Figure 3: instability density heat map — each day is a vertical strip of
// 10-minute bins; a bin is dark when detrended log instability (AADiff +
// WADiff + WADup) exceeds a threshold above the mean.
//
// Paper shape: quiet 00:00-06:00 band, dense noon-midnight band, light
// weekend stripes, a dark vertical band during the upgrade incident, a
// horizontal ~10:00 maintenance ridge.
#include <cmath>

#include "analysis/series.h"
#include "bench_common.h"
#include "core/stats.h"

int main(int argc, char** argv) {
  using namespace iri;
  auto flags = bench::Flags::Parse(argc, argv, /*days=*/210,
                                   /*scale_denominator=*/96,
                                   /*providers=*/14);
  bench::PrintHeader(
      "Figure 3: instability density (10-minute bins, detrended log)", flags);

  auto cfg = flags.ToScenarioConfig();
  cfg.upgrade_enabled = true;  // the end-of-May dark band
  workload::ExchangeScenario scenario(cfg);

  core::TimeBinner binner(Duration::Minutes(10));
  scenario.monitor().AddSink([&binner](const core::ClassifiedEvent& ev) {
    if (core::IsInstability(ev.category)) binner.Add(ev.event.time);
  });
  scenario.Run();
  binner.ExtendTo(TimePoint::Origin() + cfg.duration - Duration::Millis(1));

  // Paper preprocessing: log, least-squares detrend, threshold above mean.
  const auto& bins = binner.bins();
  analysis::Series series(bins.begin(), bins.end());
  analysis::Series detrended = analysis::DetrendedLog(series);
  const double mean = analysis::Mean(detrended);
  const double sd = std::sqrt(analysis::Variance(detrended));
  const double threshold = mean + 0.5 * sd;

  // Raw-update equivalents of the threshold at the start/end (paper: "345
  // updates per 10 minute aggregate in March to 770 in September").
  const analysis::LinearFit trend =
      analysis::FitLine(analysis::LogTransform(series));
  const double start_threshold = std::exp(trend.intercept + threshold);
  const double end_threshold = std::exp(
      trend.intercept + trend.slope * static_cast<double>(series.size()) +
      threshold);
  std::printf("threshold in raw updates/10min: %.0f (start) .. %.0f (end) "
              "[full-scale: %.0f .. %.0f; paper: 345 .. 770]\n\n",
              start_threshold, end_threshold,
              bench::FullScale(start_threshold, flags),
              bench::FullScale(end_threshold, flags));

  // Render: rows = 2-hour bands (bottom = midnight), columns = days
  // (2 days per character via max).
  const int bins_per_day = 144;
  const int days = static_cast<int>(bins.size()) / bins_per_day;
  std::printf("density map (#: above threshold fraction >1/2 in band, "
              "+: >1/4, .: any, ' ': quiet) — x: days, y: hour of day\n");
  for (int band = 11; band >= 0; --band) {  // 2-hour bands, midnight bottom
    std::printf("%02d-%02dh |", band * 2, band * 2 + 2);
    for (int day = 1; day < days; day += 2) {
      int above = 0, total = 0;
      for (int d = day; d < std::min(day + 2, days); ++d) {
        for (int b = band * 12; b < (band + 1) * 12; ++b) {
          const std::size_t idx =
              static_cast<std::size_t>(d * bins_per_day + b);
          if (idx < detrended.size()) {
            ++total;
            if (detrended[idx] > threshold) ++above;
          }
        }
      }
      const double frac = total ? static_cast<double>(above) / total : 0;
      std::putchar(frac > 0.5 ? '#' : frac > 0.25 ? '+' : frac > 0 ? '.' : ' ');
    }
    std::printf("|\n");
  }
  std::printf("        ");
  for (int day = 1; day < days; day += 2) {
    std::putchar(workload::UsageModel::DayOfWeek(
                     TimePoint::Origin() + Duration::Days(day) +
                     Duration::Hours(12)) <= 1
                     ? '^'
                     : ' ');  // weekend marker
  }
  std::printf("  (^ = weekend)\n\n");

  // Quantified shape checks.
  auto band_mean = [&](int h_lo, int h_hi) {
    double sum = 0;
    int n = 0;
    for (int day = 1; day < days; ++day) {
      for (int b = h_lo * 6; b < h_hi * 6; ++b) {
        sum += static_cast<double>(
            bins[static_cast<std::size_t>(day * bins_per_day + b)]);
        ++n;
      }
    }
    return n ? sum / n : 0;
  };
  std::printf("mean updates/10min 00-06h: %.1f | 12-24h: %.1f "
              "(paper: night << day)\n",
              band_mean(0, 6), band_mean(12, 24));

  double weekday_sum = 0, weekend_sum = 0;
  int weekday_n = 0, weekend_n = 0;
  for (int day = 1; day < days; ++day) {
    double day_total = 0;
    for (int b = 0; b < bins_per_day; ++b) {
      day_total += static_cast<double>(
          bins[static_cast<std::size_t>(day * bins_per_day + b)]);
    }
    if (day % 7 <= 1) {
      weekend_sum += day_total;
      ++weekend_n;
    } else {
      weekday_sum += day_total;
      ++weekday_n;
    }
  }
  std::printf("mean instability/day weekday: %.0f | weekend: %.0f "
              "(paper: weekend stripes lighter)\n",
              weekday_sum / weekday_n, weekend_sum / weekend_n);

  double upgrade_sum = 0, normal_sum = 0;
  int upgrade_n = 0, normal_n = 0;
  for (int day = 1; day < days; ++day) {
    double day_total = 0;
    for (int b = 0; b < bins_per_day; ++b) {
      day_total += static_cast<double>(
          bins[static_cast<std::size_t>(day * bins_per_day + b)]);
    }
    if (day >= cfg.upgrade_start_day && day <= cfg.upgrade_end_day) {
      upgrade_sum += day_total;
      ++upgrade_n;
    } else if (day % 7 > 1) {
      normal_sum += day_total;
      ++normal_n;
    }
  }
  if (upgrade_n > 0) {
    std::printf("mean instability/day during upgrade incident: %.0f vs "
                "normal weekday %.0f (paper: bold vertical band)\n",
                upgrade_sum / upgrade_n, normal_sum / normal_n);
  }
  return 0;
}
