// Parallel multi-exchange scaling: updates/sec for the five-collector
// cross-exchange campaign, serial vs. N worker threads, emitted as
// BENCH_parallel.json so CI can track the perf trajectory run over run.
//
// --shards / --shard-threads engage the intra-exchange prefix-space
// sharding of DESIGN.md §13 for every timed run, and the bench reports the
// sharding layer's own diagnostics alongside the thread sweep: per-shard
// event counts and peak pending-queue depth (monitor.shard.<k>.*) plus the
// pipeline's merge-wait (profile.monitor.drain.wall_ns — the wall time the
// arrival-order merge spends inside the sharded classify fan-out). Those
// instruments are kWallClock, so the runs here enable profile_wall_clock;
// they never appear in a digest.
//
// The runner's determinism guarantee is asserted inline: every thread count
// must produce the identical merged digest, or the speedup numbers are
// measuring two different computations and the bench aborts.
//
// Timing uses wall-clock deliberately (this is a benchmark driver, not
// simulation code; bench/ is outside the determinism lint's scope).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "bench_json.h"
#include "obs/metrics.h"
#include "sim/parallel.h"
#include "workload/multi_exchange_runner.h"

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  const auto elapsed = std::chrono::steady_clock::now() - start;
  return std::chrono::duration<double>(elapsed).count();
}

// Value of `counter <name> <n>` / `gauge <name> <n>` in a SnapshotText dump;
// 0 when absent (a shard that never saw an event registers nothing).
std::uint64_t SnapshotValue(const std::string& snapshot,
                            const std::string& kind, const std::string& name) {
  const std::string key = kind + " " + name + " ";
  const auto pos = snapshot.find(key);
  if (pos == std::string::npos) return 0;
  return std::strtoull(snapshot.c_str() + pos + key.size(), nullptr, 10);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace iri;
  auto flags = bench::Flags::Parse(argc, argv, /*days=*/0.5,
                                   /*scale_denominator=*/64,
                                   /*providers=*/12);
  std::string out_path = "BENCH_parallel.json";
  int max_threads = 4;
  int shards = 4;
  int shard_threads = 2;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) out_path = argv[i] + 6;
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      max_threads = std::atoi(argv[i] + 10);
    }
    if (std::strncmp(argv[i], "--shards=", 9) == 0) {
      shards = std::atoi(argv[i] + 9);
    }
    if (std::strncmp(argv[i], "--shard-threads=", 16) == 0) {
      shard_threads = std::atoi(argv[i] + 16);
    }
  }
  bench::PrintHeader("Parallel multi-exchange scaling (5 collectors)", flags);

  workload::MultiExchangeConfig base;
  base.scenario = flags.ToScenarioConfig();
  base.scenario.num_exchanges = 5;
  base.scenario.shards = shards;
  base.scenario.shard_threads = shard_threads;
  // Per-shard depth and merge-wait instruments are kWallClock; profiling is
  // on for every run in the sweep, so the speedup ratio compares
  // like-for-like instrumented runs.
  base.scenario.profile_wall_clock = true;

  std::vector<int> thread_counts{1};
  for (int t = 2; t <= max_threads; t *= 2) thread_counts.push_back(t);

  struct Run {
    int threads;
    double seconds;
    std::uint64_t updates;
    std::uint64_t sim_events;
    std::uint64_t drain_calls;
    std::uint64_t drain_wall_ns;
  };
  std::vector<Run> runs;
  std::string reference_digest;
  // Per-shard load from the serial run (summed across the five exchanges:
  // merged counters add, and the depth gauges are registered kSum, so the
  // merged peak is the sum of per-exchange peaks).
  struct ShardLoad {
    std::uint64_t events;
    std::uint64_t depth_peak;
  };
  std::vector<ShardLoad> shard_loads;

  for (int threads : thread_counts) {
    workload::MultiExchangeConfig cfg = base;
    cfg.threads = threads;
    const auto start = std::chrono::steady_clock::now();
    workload::MultiExchangeRunner runner(std::move(cfg));
    const workload::MultiExchangeResult result = runner.Run();
    const double seconds = SecondsSince(start);

    const std::string digest = result.Digest("parallel_scaling");
    if (reference_digest.empty()) {
      reference_digest = digest;
    } else if (digest != reference_digest) {
      std::fprintf(stderr,
                   "FATAL: %d-thread run produced a different digest than "
                   "the serial run — determinism broken, timings invalid\n",
                   threads);
      return 1;
    }

    const std::string wall =
        result.metrics.SnapshotText(/*include_wall_clock=*/true);
    if (shard_loads.empty()) {
      for (int s = 0; s < shards; ++s) {
        const std::string tag = "monitor.shard." + std::to_string(s);
        shard_loads.push_back(
            {SnapshotValue(wall, "counter", tag + ".events"),
             SnapshotValue(wall, "gauge", tag + ".depth_peak")});
      }
    }

    std::uint64_t sim_events = 0;
    for (const auto& ex : result.exchanges) sim_events += ex.tasks_executed;
    runs.push_back({threads, seconds, result.total_events, sim_events,
                    SnapshotValue(wall, "counter",
                                  "profile.monitor.drain.calls"),
                    SnapshotValue(wall, "counter",
                                  "profile.monitor.drain.wall_ns")});
    std::printf("%d thread(s): %8.2fs  %10.0f updates/sec  (%llu updates, "
                "merge-wait %.3fs over %llu drains)\n",
                threads, seconds,
                static_cast<double>(result.total_events) / seconds,
                static_cast<unsigned long long>(result.total_events),
                static_cast<double>(runs.back().drain_wall_ns) / 1e9,
                static_cast<unsigned long long>(runs.back().drain_calls));
  }

  std::printf("per-shard load (serial run, %d shards, summed over "
              "exchanges):\n",
              shards);
  for (int s = 0; s < shards; ++s) {
    std::printf("  shard %d: %10llu events, peak pending depth %llu\n", s,
                static_cast<unsigned long long>(shard_loads[s].events),
                static_cast<unsigned long long>(shard_loads[s].depth_peak));
  }

  const double serial_rate =
      static_cast<double>(runs.front().updates) / runs.front().seconds;
  const double best_rate =
      static_cast<double>(runs.back().updates) / runs.back().seconds;
  std::printf("speedup at %d threads: %.2fx (default parallelism: %d)\n",
              runs.back().threads, best_rate / serial_rate,
              sim::DefaultParallelism());

  bench::JsonWriter json;
  json.BeginObject()
      .Field("bench", "parallel_scaling")
      .Field("exchanges", 5)
      .Field("scale_denominator", flags.scale_denominator, 0)
      .Field("days", flags.days, 3)
      .Field("providers", flags.providers)
      .Field("seed", flags.seed)
      .Field("shards", shards)
      .Field("shard_threads", shard_threads)
      .Field("default_parallelism", sim::DefaultParallelism());
  json.BeginArray("runs");
  for (const Run& r : runs) {
    json.BeginObject(nullptr, /*compact=*/true)
        .Field("threads", r.threads)
        .Field("seconds", r.seconds, 4)
        .Field("updates", r.updates)
        .Field("updates_per_sec", static_cast<double>(r.updates) / r.seconds,
               1)
        .Field("sim_events", r.sim_events)
        .Field("drain_calls", r.drain_calls)
        .Field("merge_wait_ns", r.drain_wall_ns)
        .EndObject();
  }
  json.EndArray();
  json.BeginArray("shard_load");
  for (int s = 0; s < shards; ++s) {
    json.BeginObject(nullptr, /*compact=*/true)
        .Field("shard", s)
        .Field("events", shard_loads[s].events)
        .Field("depth_peak", shard_loads[s].depth_peak)
        .EndObject();
  }
  json.EndArray();
  json.Field("speedup_vs_serial", best_rate / serial_rate, 3).EndObject();
  if (!json.WriteFile(out_path)) return 1;
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
