// Parallel multi-exchange scaling: updates/sec for the five-collector
// cross-exchange campaign, serial vs. N worker threads, emitted as
// BENCH_parallel.json so CI can track the perf trajectory run over run.
//
// The runner's determinism guarantee is asserted inline: every thread count
// must produce the identical merged digest, or the speedup numbers are
// measuring two different computations and the bench aborts.
//
// Timing uses wall-clock deliberately (this is a benchmark driver, not
// simulation code; bench/ is outside the determinism lint's scope).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "bench_json.h"
#include "sim/parallel.h"
#include "workload/multi_exchange_runner.h"

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  const auto elapsed = std::chrono::steady_clock::now() - start;
  return std::chrono::duration<double>(elapsed).count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace iri;
  auto flags = bench::Flags::Parse(argc, argv, /*days=*/0.5,
                                   /*scale_denominator=*/64,
                                   /*providers=*/12);
  std::string out_path = "BENCH_parallel.json";
  int max_threads = 4;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) out_path = argv[i] + 6;
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      max_threads = std::atoi(argv[i] + 10);
    }
  }
  bench::PrintHeader("Parallel multi-exchange scaling (5 collectors)", flags);

  workload::MultiExchangeConfig base;
  base.scenario = flags.ToScenarioConfig();
  base.scenario.num_exchanges = 5;

  std::vector<int> thread_counts{1};
  for (int t = 2; t <= max_threads; t *= 2) thread_counts.push_back(t);

  struct Run {
    int threads;
    double seconds;
    std::uint64_t updates;
    std::uint64_t sim_events;
  };
  std::vector<Run> runs;
  std::string reference_digest;

  for (int threads : thread_counts) {
    workload::MultiExchangeConfig cfg = base;
    cfg.threads = threads;
    const auto start = std::chrono::steady_clock::now();
    workload::MultiExchangeRunner runner(std::move(cfg));
    const workload::MultiExchangeResult result = runner.Run();
    const double seconds = SecondsSince(start);

    const std::string digest = result.Digest("parallel_scaling");
    if (reference_digest.empty()) {
      reference_digest = digest;
    } else if (digest != reference_digest) {
      std::fprintf(stderr,
                   "FATAL: %d-thread run produced a different digest than "
                   "the serial run — determinism broken, timings invalid\n",
                   threads);
      return 1;
    }

    std::uint64_t sim_events = 0;
    for (const auto& ex : result.exchanges) sim_events += ex.tasks_executed;
    runs.push_back({threads, seconds, result.total_events, sim_events});
    std::printf("%d thread(s): %8.2fs  %10.0f updates/sec  (%llu updates)\n",
                threads, seconds,
                static_cast<double>(result.total_events) / seconds,
                static_cast<unsigned long long>(result.total_events));
  }

  const double serial_rate =
      static_cast<double>(runs.front().updates) / runs.front().seconds;
  const double best_rate =
      static_cast<double>(runs.back().updates) / runs.back().seconds;
  std::printf("speedup at %d threads: %.2fx (default parallelism: %d)\n",
              runs.back().threads, best_rate / serial_rate,
              sim::DefaultParallelism());

  bench::JsonWriter json;
  json.BeginObject()
      .Field("bench", "parallel_scaling")
      .Field("exchanges", 5)
      .Field("scale_denominator", flags.scale_denominator, 0)
      .Field("days", flags.days, 3)
      .Field("providers", flags.providers)
      .Field("seed", flags.seed)
      .Field("default_parallelism", sim::DefaultParallelism());
  json.BeginArray("runs");
  for (const Run& r : runs) {
    json.BeginObject(nullptr, /*compact=*/true)
        .Field("threads", r.threads)
        .Field("seconds", r.seconds, 4)
        .Field("updates", r.updates)
        .Field("updates_per_sec", static_cast<double>(r.updates) / r.seconds,
               1)
        .Field("sim_events", r.sim_events)
        .EndObject();
  }
  json.EndArray();
  json.Field("speedup_vs_serial", best_rate / serial_rate, 3).EndObject();
  if (!json.WriteFile(out_path)) return 1;
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
