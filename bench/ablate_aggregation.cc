// §4.1 ablation: CIDR aggregation quality.
//
// "A high level of aggregation will result in a small number of globally
// visible prefixes, and a greater stability in prefixes that are announced
// ... effectively limit[ing] the visibility of instability stemming from
// unstable customer circuits or routers to the scope of a single autonomous
// system." Sweep the aggregated fraction and measure the visible table and
// the instability that escapes to the exchange.
#include "bench_common.h"
#include "core/report.h"
#include "core/stats.h"

int main(int argc, char** argv) {
  using namespace iri;
  auto flags = bench::Flags::Parse(argc, argv, /*days=*/2,
                                   /*scale_denominator=*/32,
                                   /*providers=*/14);
  bench::PrintHeader("Ablation: aggregation quality vs visible instability",
                     flags);

  std::vector<std::vector<std::string>> rows;
  for (double aggregated : {0.0, 0.3, 0.55, 0.8, 0.95}) {
    auto cfg = flags.ToScenarioConfig();
    cfg.topology.aggregated_fraction = aggregated;
    // Multihoming forces de-aggregation; hold its target fraction constant
    // so only aggregation quality varies.
    workload::ExchangeScenario scenario(cfg);
    core::CategoryCounts counts;
    scenario.monitor().AddSink(
        [&counts](const core::ClassifiedEvent& ev) { counts.Add(ev); });
    scenario.Run();

    char frac[16];
    std::snprintf(frac, sizeof(frac), "%.0f%%", aggregated * 100);
    rows.push_back(
        {frac,
         std::to_string(scenario.route_server().rib().NumPrefixes()),
         std::to_string(counts.Instability()),
         std::to_string(counts.Of(core::Category::kWWDup)),
         std::to_string(counts.Total())});
  }
  std::printf("%s\n",
              core::FormatTable({"aggregated", "visible-table", "instability",
                                 "WWDup", "total-updates"},
                                rows)
                  .c_str());
  std::printf(
      "paper expectations: better aggregation => smaller default-free table "
      "and less visible instability; but the stateless withdrawal pathology "
      "(WWDup) leaks through policy regardless — aggregation cannot mask "
      "it, only the stateful software fix can (see ablate_stateless_bgp).\n");
  return 0;
}
