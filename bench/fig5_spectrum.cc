// Figure 5: time-series analysis of hourly update aggregates.
//  (a) power spectra by FFT correlogram and maximum-entropy (Burg)
//      estimation — both must peak at 7 days and 24 hours;
//  (b) top-5 singular-spectrum-analysis components with their frequencies.
//
// Preprocessing follows the paper: hourly aggregates over ~2 months,
// multiplicative model x_t = T_t * I_t, log transform, least-squares
// detrend.
#include <cmath>

#include "analysis/spectrum.h"
#include "analysis/ssa.h"
#include "bench_common.h"
#include "core/stats.h"

int main(int argc, char** argv) {
  using namespace iri;
  auto flags = bench::Flags::Parse(argc, argv, /*days=*/61,
                                   /*scale_denominator=*/64,
                                   /*providers=*/14);
  bench::PrintHeader(
      "Figure 5: spectral analysis of hourly instability aggregates", flags);

  auto cfg = flags.ToScenarioConfig();
  workload::ExchangeScenario scenario(cfg);
  core::TimeBinner binner(Duration::Hours(1));
  scenario.monitor().AddSink([&binner](const core::ClassifiedEvent& ev) {
    if (core::IsInstability(ev.category)) binner.Add(ev.event.time);
  });
  scenario.Run();
  binner.ExtendTo(TimePoint::Origin() + cfg.duration - Duration::Millis(1));

  // Drop the bootstrap day, then detrended-log per the paper.
  const auto& bins = binner.bins();
  analysis::Series series(bins.begin() + 24, bins.end());
  const analysis::Series x = analysis::DetrendedLog(series);

  // --- (a) correlogram + MEM ---
  const std::size_t max_lag = std::min<std::size_t>(x.size() / 3, 24 * 21);
  auto fft_spec = analysis::CorrelogramSpectrum(x, max_lag);
  // The AR order must exceed the longest period of interest (168 h) to
  // resolve the weekly line.
  auto mem_spec =
      analysis::MemSpectrum(x, /*order=*/24 * 8, /*num_points=*/4096);

  auto report_peaks = [](const char* name,
                         const std::vector<analysis::SpectrumPoint>& spec) {
    auto peaks = analysis::FindPeaks(spec, 5);
    std::printf("%s peaks (frequency in 1/hour -> period):\n", name);
    for (const auto& p : peaks) {
      std::printf("  f=%.5f /h  period=%7.1f h (%.2f days)  power=%.3g\n",
                  p.frequency, 1.0 / p.frequency, 1.0 / p.frequency / 24.0,
                  p.power);
    }
    return peaks;
  };
  auto fft_peaks = report_peaks("FFT correlogram", fft_spec);
  auto mem_peaks = report_peaks("MEM (Burg)", mem_spec);

  auto has_peak_near = [](const std::vector<analysis::SpectrumPoint>& peaks,
                          double period_h, double tol_frac) {
    for (const auto& p : peaks) {
      const double period = 1.0 / p.frequency;
      if (std::abs(period - period_h) < tol_frac * period_h) return true;
    }
    return false;
  };
  std::printf("\nvalidation (paper: significant frequencies at 7 days and "
              "24 hours, by both estimators):\n");
  std::printf("  FFT: 24h peak %s | 7d peak %s\n",
              has_peak_near(fft_peaks, 24, 0.15) ? "FOUND" : "missing",
              has_peak_near(fft_peaks, 168, 0.25) ? "FOUND" : "missing");
  std::printf("  MEM: 24h peak %s | 7d peak %s\n",
              has_peak_near(mem_peaks, 24, 0.15) ? "FOUND" : "missing",
              has_peak_near(mem_peaks, 168, 0.25) ? "FOUND" : "missing");

  // --- (b) SSA top components with the paper's white-noise 99% test ---
  const std::size_t window = 24 * 8;
  analysis::Ssa ssa(x, window);
  const double threshold = analysis::WhiteNoiseEigenvalueThreshold(
      analysis::Variance(x), x.size(), window, /*trials=*/6,
      /*percentile=*/0.99, /*seed=*/flags.seed);
  std::printf("\nSSA top 5 components (paper fig 5b; white-noise 99%% "
              "eigenvalue threshold: %.3g):\n",
              threshold);
  for (std::size_t k = 0; k < 5 && k < ssa.components().size(); ++k) {
    const auto& comp = ssa.components()[k];
    const double period = comp.dominant_frequency > 0
                              ? 1.0 / comp.dominant_frequency
                              : 0.0;
    std::printf("  #%zu: variance %.1f%%  dominant period %6.1f h (%.2f d)  "
                "eigenvalue %.3g %s\n",
                k + 1, comp.variance_fraction * 100, period, period / 24.0,
                comp.eigenvalue,
                comp.eigenvalue > threshold ? "SIGNIFICANT" : "(noise-level)");
  }
  return 0;
}
