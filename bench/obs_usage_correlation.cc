// §5.1's most debated claim, quantified: "It is somewhat surprising that
// the measured routing instability corresponds so closely to the trends
// seen in Internet bandwidth usage and packet loss."
//
// The simulator encodes the causal direction the paper leans toward
// (congestion-correlated events drive instability); this bench verifies the
// *measurable* consequence the paper reports: hourly instability tracks the
// usage curve, including the late-evening tail ("a significant level of
// instability remains until late evening, correlating more with Internet
// usage than engineering maintenance hours").
#include <cmath>

#include "analysis/series.h"
#include "bench_common.h"
#include "core/stats.h"

int main(int argc, char** argv) {
  using namespace iri;
  auto flags = bench::Flags::Parse(argc, argv, /*days=*/28,
                                   /*scale_denominator=*/48,
                                   /*providers=*/14);
  bench::PrintHeader("Usage vs instability correlation (§5.1)", flags);

  auto cfg = flags.ToScenarioConfig();
  workload::ExchangeScenario scenario(cfg);
  core::TimeBinner hourly(Duration::Hours(1));
  scenario.monitor().AddSink([&hourly](const core::ClassifiedEvent& ev) {
    if (core::IsInstability(ev.category)) hourly.Add(ev.event.time);
  });
  scenario.Run();
  hourly.ExtendTo(TimePoint::Origin() + cfg.duration - Duration::Millis(1));

  // Build the matching usage series (sampled mid-hour), drop bootstrap day.
  const auto& bins = hourly.bins();
  analysis::Series instability, usage;
  for (std::size_t h = 24; h < bins.size(); ++h) {
    instability.push_back(static_cast<double>(bins[h]));
    usage.push_back(scenario.usage().Level(
        TimePoint::Origin() + Duration::Hours(static_cast<double>(h) + 0.5)));
  }

  const double mi = analysis::Mean(instability);
  const double mu = analysis::Mean(usage);
  double cov = 0, vi = 0, vu = 0;
  for (std::size_t i = 0; i < instability.size(); ++i) {
    cov += (instability[i] - mi) * (usage[i] - mu);
    vi += (instability[i] - mi) * (instability[i] - mi);
    vu += (usage[i] - mu) * (usage[i] - mu);
  }
  const double corr = cov / std::sqrt(vi * vu);
  std::printf("hourly instability vs usage level, %zu hours: "
              "Pearson r = %.3f (paper: close correspondence)\n",
              instability.size(), corr);

  // Four-hour aggregates average out the Poisson shot noise of the small
  // simulated universe; the underlying correspondence shows through.
  analysis::Series instability4, usage4;
  for (std::size_t i = 0; i + 4 <= instability.size(); i += 4) {
    double si = 0, su = 0;
    for (std::size_t j = i; j < i + 4; ++j) {
      si += instability[j];
      su += usage[j];
    }
    instability4.push_back(si);
    usage4.push_back(su);
  }
  const double mi4 = analysis::Mean(instability4);
  const double mu4 = analysis::Mean(usage4);
  double cov4 = 0, vi4 = 0, vu4 = 0;
  for (std::size_t i = 0; i < instability4.size(); ++i) {
    cov4 += (instability4[i] - mi4) * (usage4[i] - mu4);
    vi4 += (instability4[i] - mi4) * (instability4[i] - mi4);
    vu4 += (usage4[i] - mu4) * (usage4[i] - mu4);
  }
  std::printf("four-hour aggregates: Pearson r = %.3f\n",
              cov4 / std::sqrt(vi4 * vu4));

  // The late-evening test: maintenance ends by ~10:30, but instability at
  // 20:00-23:00 must still clearly exceed the 02:00-05:00 trough.
  double evening = 0, night = 0;
  int n_e = 0, n_n = 0;
  for (std::size_t h = 24; h < bins.size(); ++h) {
    const int hod = static_cast<int>(h % 24);
    if (hod >= 20 && hod < 23) {
      evening += static_cast<double>(bins[h]);
      ++n_e;
    } else if (hod >= 2 && hod < 5) {
      night += static_cast<double>(bins[h]);
      ++n_n;
    }
  }
  std::printf("late-evening (20-23h) mean %.1f vs pre-dawn (02-05h) mean "
              "%.1f events/hour — instability persists \"until late "
              "evening\", ruling out the business-hours-engineering "
              "explanation\n",
              evening / n_e, night / n_n);
  return 0;
}
