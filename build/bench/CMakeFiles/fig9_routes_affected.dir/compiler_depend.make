# Empty compiler generated dependencies file for fig9_routes_affected.
# This may be replaced when dependencies are built.
