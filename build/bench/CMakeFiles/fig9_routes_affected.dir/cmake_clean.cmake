file(REMOVE_RECURSE
  "CMakeFiles/fig9_routes_affected.dir/fig9_routes_affected.cc.o"
  "CMakeFiles/fig9_routes_affected.dir/fig9_routes_affected.cc.o.d"
  "fig9_routes_affected"
  "fig9_routes_affected.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_routes_affected.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
