file(REMOVE_RECURSE
  "CMakeFiles/fig6_as_contribution.dir/fig6_as_contribution.cc.o"
  "CMakeFiles/fig6_as_contribution.dir/fig6_as_contribution.cc.o.d"
  "fig6_as_contribution"
  "fig6_as_contribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_as_contribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
