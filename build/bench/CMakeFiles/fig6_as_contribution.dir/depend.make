# Empty dependencies file for fig6_as_contribution.
# This may be replaced when dependencies are built.
