# Empty dependencies file for ablate_self_sync.
# This may be replaced when dependencies are built.
