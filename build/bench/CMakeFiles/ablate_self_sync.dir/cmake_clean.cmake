file(REMOVE_RECURSE
  "CMakeFiles/ablate_self_sync.dir/ablate_self_sync.cc.o"
  "CMakeFiles/ablate_self_sync.dir/ablate_self_sync.cc.o.d"
  "ablate_self_sync"
  "ablate_self_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_self_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
