file(REMOVE_RECURSE
  "CMakeFiles/obs_cross_exchange.dir/obs_cross_exchange.cc.o"
  "CMakeFiles/obs_cross_exchange.dir/obs_cross_exchange.cc.o.d"
  "obs_cross_exchange"
  "obs_cross_exchange.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/obs_cross_exchange.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
