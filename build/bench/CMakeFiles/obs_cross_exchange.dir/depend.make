# Empty dependencies file for obs_cross_exchange.
# This may be replaced when dependencies are built.
