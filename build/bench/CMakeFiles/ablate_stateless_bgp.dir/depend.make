# Empty dependencies file for ablate_stateless_bgp.
# This may be replaced when dependencies are built.
