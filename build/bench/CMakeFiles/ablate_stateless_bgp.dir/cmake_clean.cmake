file(REMOVE_RECURSE
  "CMakeFiles/ablate_stateless_bgp.dir/ablate_stateless_bgp.cc.o"
  "CMakeFiles/ablate_stateless_bgp.dir/ablate_stateless_bgp.cc.o.d"
  "ablate_stateless_bgp"
  "ablate_stateless_bgp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_stateless_bgp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
