# Empty dependencies file for fig4_week.
# This may be replaced when dependencies are built.
