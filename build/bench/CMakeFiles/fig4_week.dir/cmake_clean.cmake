file(REMOVE_RECURSE
  "CMakeFiles/fig4_week.dir/fig4_week.cc.o"
  "CMakeFiles/fig4_week.dir/fig4_week.cc.o.d"
  "fig4_week"
  "fig4_week.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_week.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
