file(REMOVE_RECURSE
  "CMakeFiles/ablate_dampening.dir/ablate_dampening.cc.o"
  "CMakeFiles/ablate_dampening.dir/ablate_dampening.cc.o.d"
  "ablate_dampening"
  "ablate_dampening.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_dampening.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
