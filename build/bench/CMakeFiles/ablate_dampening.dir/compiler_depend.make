# Empty compiler generated dependencies file for ablate_dampening.
# This may be replaced when dependencies are built.
