# Empty dependencies file for obs_usage_correlation.
# This may be replaced when dependencies are built.
