file(REMOVE_RECURSE
  "CMakeFiles/obs_usage_correlation.dir/obs_usage_correlation.cc.o"
  "CMakeFiles/obs_usage_correlation.dir/obs_usage_correlation.cc.o.d"
  "obs_usage_correlation"
  "obs_usage_correlation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/obs_usage_correlation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
