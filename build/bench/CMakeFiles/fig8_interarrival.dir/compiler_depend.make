# Empty compiler generated dependencies file for fig8_interarrival.
# This may be replaced when dependencies are built.
