file(REMOVE_RECURSE
  "CMakeFiles/fig8_interarrival.dir/fig8_interarrival.cc.o"
  "CMakeFiles/fig8_interarrival.dir/fig8_interarrival.cc.o.d"
  "fig8_interarrival"
  "fig8_interarrival.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_interarrival.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
