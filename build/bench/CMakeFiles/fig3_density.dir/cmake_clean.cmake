file(REMOVE_RECURSE
  "CMakeFiles/fig3_density.dir/fig3_density.cc.o"
  "CMakeFiles/fig3_density.dir/fig3_density.cc.o.d"
  "fig3_density"
  "fig3_density.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_density.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
