# Empty compiler generated dependencies file for fig3_density.
# This may be replaced when dependencies are built.
