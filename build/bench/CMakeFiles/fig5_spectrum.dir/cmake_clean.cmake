file(REMOVE_RECURSE
  "CMakeFiles/fig5_spectrum.dir/fig5_spectrum.cc.o"
  "CMakeFiles/fig5_spectrum.dir/fig5_spectrum.cc.o.d"
  "fig5_spectrum"
  "fig5_spectrum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_spectrum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
