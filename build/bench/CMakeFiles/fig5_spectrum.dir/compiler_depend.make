# Empty compiler generated dependencies file for fig5_spectrum.
# This may be replaced when dependencies are built.
