# Empty compiler generated dependencies file for obs_stateful_deployment.
# This may be replaced when dependencies are built.
