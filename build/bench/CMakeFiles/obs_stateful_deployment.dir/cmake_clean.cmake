file(REMOVE_RECURSE
  "CMakeFiles/obs_stateful_deployment.dir/obs_stateful_deployment.cc.o"
  "CMakeFiles/obs_stateful_deployment.dir/obs_stateful_deployment.cc.o.d"
  "obs_stateful_deployment"
  "obs_stateful_deployment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/obs_stateful_deployment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
