# Empty dependencies file for obs_gross_volume.
# This may be replaced when dependencies are built.
