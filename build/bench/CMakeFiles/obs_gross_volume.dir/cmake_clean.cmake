file(REMOVE_RECURSE
  "CMakeFiles/obs_gross_volume.dir/obs_gross_volume.cc.o"
  "CMakeFiles/obs_gross_volume.dir/obs_gross_volume.cc.o.d"
  "obs_gross_volume"
  "obs_gross_volume.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/obs_gross_volume.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
