# Empty dependencies file for ablate_route_cache.
# This may be replaced when dependencies are built.
