file(REMOVE_RECURSE
  "CMakeFiles/ablate_route_cache.dir/ablate_route_cache.cc.o"
  "CMakeFiles/ablate_route_cache.dir/ablate_route_cache.cc.o.d"
  "ablate_route_cache"
  "ablate_route_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_route_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
