# Empty dependencies file for fig7_prefixas_cdf.
# This may be replaced when dependencies are built.
