file(REMOVE_RECURSE
  "CMakeFiles/ablate_timer_jitter.dir/ablate_timer_jitter.cc.o"
  "CMakeFiles/ablate_timer_jitter.dir/ablate_timer_jitter.cc.o.d"
  "ablate_timer_jitter"
  "ablate_timer_jitter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_timer_jitter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
