# Empty dependencies file for ablate_timer_jitter.
# This may be replaced when dependencies are built.
