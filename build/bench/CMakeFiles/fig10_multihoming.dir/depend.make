# Empty dependencies file for fig10_multihoming.
# This may be replaced when dependencies are built.
