file(REMOVE_RECURSE
  "CMakeFiles/fig10_multihoming.dir/fig10_multihoming.cc.o"
  "CMakeFiles/fig10_multihoming.dir/fig10_multihoming.cc.o.d"
  "fig10_multihoming"
  "fig10_multihoming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_multihoming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
