# Empty dependencies file for ablate_route_server.
# This may be replaced when dependencies are built.
