file(REMOVE_RECURSE
  "CMakeFiles/ablate_route_server.dir/ablate_route_server.cc.o"
  "CMakeFiles/ablate_route_server.dir/ablate_route_server.cc.o.d"
  "ablate_route_server"
  "ablate_route_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_route_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
