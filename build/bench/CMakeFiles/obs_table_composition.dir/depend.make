# Empty dependencies file for obs_table_composition.
# This may be replaced when dependencies are built.
