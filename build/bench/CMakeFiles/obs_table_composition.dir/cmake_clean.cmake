file(REMOVE_RECURSE
  "CMakeFiles/obs_table_composition.dir/obs_table_composition.cc.o"
  "CMakeFiles/obs_table_composition.dir/obs_table_composition.cc.o.d"
  "obs_table_composition"
  "obs_table_composition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/obs_table_composition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
