file(REMOVE_RECURSE
  "CMakeFiles/table1_update_totals.dir/table1_update_totals.cc.o"
  "CMakeFiles/table1_update_totals.dir/table1_update_totals.cc.o.d"
  "table1_update_totals"
  "table1_update_totals.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_update_totals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
