# Empty dependencies file for table1_update_totals.
# This may be replaced when dependencies are built.
