# Empty compiler generated dependencies file for topology_universe_test.
# This may be replaced when dependencies are built.
