file(REMOVE_RECURSE
  "CMakeFiles/topology_universe_test.dir/topology_universe_test.cc.o"
  "CMakeFiles/topology_universe_test.dir/topology_universe_test.cc.o.d"
  "topology_universe_test"
  "topology_universe_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topology_universe_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
