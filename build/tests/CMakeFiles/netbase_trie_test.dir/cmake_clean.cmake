file(REMOVE_RECURSE
  "CMakeFiles/netbase_trie_test.dir/netbase_trie_test.cc.o"
  "CMakeFiles/netbase_trie_test.dir/netbase_trie_test.cc.o.d"
  "netbase_trie_test"
  "netbase_trie_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netbase_trie_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
