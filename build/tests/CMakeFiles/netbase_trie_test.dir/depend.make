# Empty dependencies file for netbase_trie_test.
# This may be replaced when dependencies are built.
