# Empty dependencies file for property_rib_test.
# This may be replaced when dependencies are built.
