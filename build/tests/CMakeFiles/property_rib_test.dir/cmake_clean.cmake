file(REMOVE_RECURSE
  "CMakeFiles/property_rib_test.dir/property_rib_test.cc.o"
  "CMakeFiles/property_rib_test.dir/property_rib_test.cc.o.d"
  "property_rib_test"
  "property_rib_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_rib_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
