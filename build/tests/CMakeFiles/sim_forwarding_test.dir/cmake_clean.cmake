file(REMOVE_RECURSE
  "CMakeFiles/sim_forwarding_test.dir/sim_forwarding_test.cc.o"
  "CMakeFiles/sim_forwarding_test.dir/sim_forwarding_test.cc.o.d"
  "sim_forwarding_test"
  "sim_forwarding_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_forwarding_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
