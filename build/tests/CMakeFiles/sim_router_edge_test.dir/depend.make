# Empty dependencies file for sim_router_edge_test.
# This may be replaced when dependencies are built.
