
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim_router_edge_test.cc" "tests/CMakeFiles/sim_router_edge_test.dir/sim_router_edge_test.cc.o" "gcc" "tests/CMakeFiles/sim_router_edge_test.dir/sim_router_edge_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/iri_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/iri_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/iri_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/igp/CMakeFiles/iri_igp.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/iri_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mrt/CMakeFiles/iri_mrt.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/iri_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/bgp/CMakeFiles/iri_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/netbase/CMakeFiles/iri_netbase.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
