file(REMOVE_RECURSE
  "CMakeFiles/sim_router_edge_test.dir/sim_router_edge_test.cc.o"
  "CMakeFiles/sim_router_edge_test.dir/sim_router_edge_test.cc.o.d"
  "sim_router_edge_test"
  "sim_router_edge_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_router_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
