# Empty dependencies file for integration_scenario_test.
# This may be replaced when dependencies are built.
