file(REMOVE_RECURSE
  "CMakeFiles/integration_scenario_test.dir/integration_scenario_test.cc.o"
  "CMakeFiles/integration_scenario_test.dir/integration_scenario_test.cc.o.d"
  "integration_scenario_test"
  "integration_scenario_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_scenario_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
