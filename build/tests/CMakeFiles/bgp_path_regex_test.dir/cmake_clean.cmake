file(REMOVE_RECURSE
  "CMakeFiles/bgp_path_regex_test.dir/bgp_path_regex_test.cc.o"
  "CMakeFiles/bgp_path_regex_test.dir/bgp_path_regex_test.cc.o.d"
  "bgp_path_regex_test"
  "bgp_path_regex_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgp_path_regex_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
