# Empty dependencies file for netbase_bytes_test.
# This may be replaced when dependencies are built.
