file(REMOVE_RECURSE
  "CMakeFiles/netbase_bytes_test.dir/netbase_bytes_test.cc.o"
  "CMakeFiles/netbase_bytes_test.dir/netbase_bytes_test.cc.o.d"
  "netbase_bytes_test"
  "netbase_bytes_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netbase_bytes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
