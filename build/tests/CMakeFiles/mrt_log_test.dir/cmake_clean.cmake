file(REMOVE_RECURSE
  "CMakeFiles/mrt_log_test.dir/mrt_log_test.cc.o"
  "CMakeFiles/mrt_log_test.dir/mrt_log_test.cc.o.d"
  "mrt_log_test"
  "mrt_log_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrt_log_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
