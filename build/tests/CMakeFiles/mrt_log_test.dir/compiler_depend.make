# Empty compiler generated dependencies file for mrt_log_test.
# This may be replaced when dependencies are built.
