file(REMOVE_RECURSE
  "CMakeFiles/workload_scenario_test.dir/workload_scenario_test.cc.o"
  "CMakeFiles/workload_scenario_test.dir/workload_scenario_test.cc.o.d"
  "workload_scenario_test"
  "workload_scenario_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_scenario_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
