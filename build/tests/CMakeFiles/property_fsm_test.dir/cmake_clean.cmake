file(REMOVE_RECURSE
  "CMakeFiles/property_fsm_test.dir/property_fsm_test.cc.o"
  "CMakeFiles/property_fsm_test.dir/property_fsm_test.cc.o.d"
  "property_fsm_test"
  "property_fsm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_fsm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
