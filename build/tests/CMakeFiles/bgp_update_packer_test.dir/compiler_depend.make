# Empty compiler generated dependencies file for bgp_update_packer_test.
# This may be replaced when dependencies are built.
