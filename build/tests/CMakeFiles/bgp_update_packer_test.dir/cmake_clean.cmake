file(REMOVE_RECURSE
  "CMakeFiles/bgp_update_packer_test.dir/bgp_update_packer_test.cc.o"
  "CMakeFiles/bgp_update_packer_test.dir/bgp_update_packer_test.cc.o.d"
  "bgp_update_packer_test"
  "bgp_update_packer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgp_update_packer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
