file(REMOVE_RECURSE
  "CMakeFiles/bgp_attributes_test.dir/bgp_attributes_test.cc.o"
  "CMakeFiles/bgp_attributes_test.dir/bgp_attributes_test.cc.o.d"
  "bgp_attributes_test"
  "bgp_attributes_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgp_attributes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
