# Empty dependencies file for bgp_attributes_test.
# This may be replaced when dependencies are built.
