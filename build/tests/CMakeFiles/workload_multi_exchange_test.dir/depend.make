# Empty dependencies file for workload_multi_exchange_test.
# This may be replaced when dependencies are built.
