file(REMOVE_RECURSE
  "CMakeFiles/workload_multi_exchange_test.dir/workload_multi_exchange_test.cc.o"
  "CMakeFiles/workload_multi_exchange_test.dir/workload_multi_exchange_test.cc.o.d"
  "workload_multi_exchange_test"
  "workload_multi_exchange_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_multi_exchange_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
