# Empty dependencies file for sim_router_dynamics_test.
# This may be replaced when dependencies are built.
