# Empty dependencies file for analysis_series_test.
# This may be replaced when dependencies are built.
