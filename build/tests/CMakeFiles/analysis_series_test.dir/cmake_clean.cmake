file(REMOVE_RECURSE
  "CMakeFiles/analysis_series_test.dir/analysis_series_test.cc.o"
  "CMakeFiles/analysis_series_test.dir/analysis_series_test.cc.o.d"
  "analysis_series_test"
  "analysis_series_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_series_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
