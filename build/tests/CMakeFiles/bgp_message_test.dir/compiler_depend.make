# Empty compiler generated dependencies file for bgp_message_test.
# This may be replaced when dependencies are built.
