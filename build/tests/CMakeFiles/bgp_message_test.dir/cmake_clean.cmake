file(REMOVE_RECURSE
  "CMakeFiles/bgp_message_test.dir/bgp_message_test.cc.o"
  "CMakeFiles/bgp_message_test.dir/bgp_message_test.cc.o.d"
  "bgp_message_test"
  "bgp_message_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgp_message_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
