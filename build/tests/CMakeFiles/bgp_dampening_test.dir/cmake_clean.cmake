file(REMOVE_RECURSE
  "CMakeFiles/bgp_dampening_test.dir/bgp_dampening_test.cc.o"
  "CMakeFiles/bgp_dampening_test.dir/bgp_dampening_test.cc.o.d"
  "bgp_dampening_test"
  "bgp_dampening_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgp_dampening_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
