# Empty dependencies file for bgp_dampening_test.
# This may be replaced when dependencies are built.
