file(REMOVE_RECURSE
  "CMakeFiles/analysis_spectrum_test.dir/analysis_spectrum_test.cc.o"
  "CMakeFiles/analysis_spectrum_test.dir/analysis_spectrum_test.cc.o.d"
  "analysis_spectrum_test"
  "analysis_spectrum_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_spectrum_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
