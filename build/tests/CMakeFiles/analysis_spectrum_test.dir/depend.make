# Empty dependencies file for analysis_spectrum_test.
# This may be replaced when dependencies are built.
