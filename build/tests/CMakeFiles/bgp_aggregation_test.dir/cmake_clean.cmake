file(REMOVE_RECURSE
  "CMakeFiles/bgp_aggregation_test.dir/bgp_aggregation_test.cc.o"
  "CMakeFiles/bgp_aggregation_test.dir/bgp_aggregation_test.cc.o.d"
  "bgp_aggregation_test"
  "bgp_aggregation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgp_aggregation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
