file(REMOVE_RECURSE
  "CMakeFiles/bgp_policy_test.dir/bgp_policy_test.cc.o"
  "CMakeFiles/bgp_policy_test.dir/bgp_policy_test.cc.o.d"
  "bgp_policy_test"
  "bgp_policy_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgp_policy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
