# Empty dependencies file for analysis_ssa_test.
# This may be replaced when dependencies are built.
