file(REMOVE_RECURSE
  "CMakeFiles/analysis_ssa_test.dir/analysis_ssa_test.cc.o"
  "CMakeFiles/analysis_ssa_test.dir/analysis_ssa_test.cc.o.d"
  "analysis_ssa_test"
  "analysis_ssa_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_ssa_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
