file(REMOVE_RECURSE
  "CMakeFiles/bgp_decision_test.dir/bgp_decision_test.cc.o"
  "CMakeFiles/bgp_decision_test.dir/bgp_decision_test.cc.o.d"
  "bgp_decision_test"
  "bgp_decision_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgp_decision_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
