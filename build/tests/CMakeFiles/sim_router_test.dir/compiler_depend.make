# Empty compiler generated dependencies file for sim_router_test.
# This may be replaced when dependencies are built.
