file(REMOVE_RECURSE
  "CMakeFiles/igp_test.dir/igp_test.cc.o"
  "CMakeFiles/igp_test.dir/igp_test.cc.o.d"
  "igp_test"
  "igp_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/igp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
