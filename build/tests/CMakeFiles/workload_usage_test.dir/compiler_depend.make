# Empty compiler generated dependencies file for workload_usage_test.
# This may be replaced when dependencies are built.
