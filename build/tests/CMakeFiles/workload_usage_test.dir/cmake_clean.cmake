file(REMOVE_RECURSE
  "CMakeFiles/workload_usage_test.dir/workload_usage_test.cc.o"
  "CMakeFiles/workload_usage_test.dir/workload_usage_test.cc.o.d"
  "workload_usage_test"
  "workload_usage_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_usage_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
