# Empty compiler generated dependencies file for example_flap_storm.
# This may be replaced when dependencies are built.
