file(REMOVE_RECURSE
  "CMakeFiles/example_flap_storm.dir/flap_storm.cpp.o"
  "CMakeFiles/example_flap_storm.dir/flap_storm.cpp.o.d"
  "example_flap_storm"
  "example_flap_storm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_flap_storm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
