file(REMOVE_RECURSE
  "CMakeFiles/example_dampening_study.dir/dampening_study.cpp.o"
  "CMakeFiles/example_dampening_study.dir/dampening_study.cpp.o.d"
  "example_dampening_study"
  "example_dampening_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_dampening_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
