# Empty compiler generated dependencies file for example_dampening_study.
# This may be replaced when dependencies are built.
