file(REMOVE_RECURSE
  "CMakeFiles/example_igp_interaction.dir/igp_interaction.cpp.o"
  "CMakeFiles/example_igp_interaction.dir/igp_interaction.cpp.o.d"
  "example_igp_interaction"
  "example_igp_interaction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_igp_interaction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
