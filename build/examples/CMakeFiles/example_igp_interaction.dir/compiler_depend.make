# Empty compiler generated dependencies file for example_igp_interaction.
# This may be replaced when dependencies are built.
