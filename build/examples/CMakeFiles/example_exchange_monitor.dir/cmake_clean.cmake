file(REMOVE_RECURSE
  "CMakeFiles/example_exchange_monitor.dir/exchange_monitor.cpp.o"
  "CMakeFiles/example_exchange_monitor.dir/exchange_monitor.cpp.o.d"
  "example_exchange_monitor"
  "example_exchange_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_exchange_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
