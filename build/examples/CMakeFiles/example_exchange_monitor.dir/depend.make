# Empty dependencies file for example_exchange_monitor.
# This may be replaced when dependencies are built.
