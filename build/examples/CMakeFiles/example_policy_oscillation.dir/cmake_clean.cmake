file(REMOVE_RECURSE
  "CMakeFiles/example_policy_oscillation.dir/policy_oscillation.cpp.o"
  "CMakeFiles/example_policy_oscillation.dir/policy_oscillation.cpp.o.d"
  "example_policy_oscillation"
  "example_policy_oscillation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_policy_oscillation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
