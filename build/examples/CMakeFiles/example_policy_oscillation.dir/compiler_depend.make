# Empty compiler generated dependencies file for example_policy_oscillation.
# This may be replaced when dependencies are built.
