file(REMOVE_RECURSE
  "CMakeFiles/iri_simulate.dir/iri_simulate.cpp.o"
  "CMakeFiles/iri_simulate.dir/iri_simulate.cpp.o.d"
  "iri_simulate"
  "iri_simulate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iri_simulate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
