# Empty compiler generated dependencies file for iri_simulate.
# This may be replaced when dependencies are built.
