# Empty dependencies file for iri_analyze.
# This may be replaced when dependencies are built.
