file(REMOVE_RECURSE
  "CMakeFiles/iri_analyze.dir/iri_analyze.cpp.o"
  "CMakeFiles/iri_analyze.dir/iri_analyze.cpp.o.d"
  "iri_analyze"
  "iri_analyze.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iri_analyze.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
