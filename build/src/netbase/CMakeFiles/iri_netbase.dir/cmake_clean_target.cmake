file(REMOVE_RECURSE
  "libiri_netbase.a"
)
