file(REMOVE_RECURSE
  "CMakeFiles/iri_netbase.dir/bytes.cc.o"
  "CMakeFiles/iri_netbase.dir/bytes.cc.o.d"
  "CMakeFiles/iri_netbase.dir/crc32.cc.o"
  "CMakeFiles/iri_netbase.dir/crc32.cc.o.d"
  "CMakeFiles/iri_netbase.dir/ipv4.cc.o"
  "CMakeFiles/iri_netbase.dir/ipv4.cc.o.d"
  "CMakeFiles/iri_netbase.dir/time.cc.o"
  "CMakeFiles/iri_netbase.dir/time.cc.o.d"
  "libiri_netbase.a"
  "libiri_netbase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iri_netbase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
