
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netbase/bytes.cc" "src/netbase/CMakeFiles/iri_netbase.dir/bytes.cc.o" "gcc" "src/netbase/CMakeFiles/iri_netbase.dir/bytes.cc.o.d"
  "/root/repo/src/netbase/crc32.cc" "src/netbase/CMakeFiles/iri_netbase.dir/crc32.cc.o" "gcc" "src/netbase/CMakeFiles/iri_netbase.dir/crc32.cc.o.d"
  "/root/repo/src/netbase/ipv4.cc" "src/netbase/CMakeFiles/iri_netbase.dir/ipv4.cc.o" "gcc" "src/netbase/CMakeFiles/iri_netbase.dir/ipv4.cc.o.d"
  "/root/repo/src/netbase/time.cc" "src/netbase/CMakeFiles/iri_netbase.dir/time.cc.o" "gcc" "src/netbase/CMakeFiles/iri_netbase.dir/time.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
