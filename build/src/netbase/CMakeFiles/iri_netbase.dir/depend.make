# Empty dependencies file for iri_netbase.
# This may be replaced when dependencies are built.
