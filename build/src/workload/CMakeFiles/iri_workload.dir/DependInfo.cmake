
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/scenario.cc" "src/workload/CMakeFiles/iri_workload.dir/scenario.cc.o" "gcc" "src/workload/CMakeFiles/iri_workload.dir/scenario.cc.o.d"
  "/root/repo/src/workload/usage.cc" "src/workload/CMakeFiles/iri_workload.dir/usage.cc.o" "gcc" "src/workload/CMakeFiles/iri_workload.dir/usage.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/iri_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/iri_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/iri_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/bgp/CMakeFiles/iri_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/netbase/CMakeFiles/iri_netbase.dir/DependInfo.cmake"
  "/root/repo/build/src/mrt/CMakeFiles/iri_mrt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
