file(REMOVE_RECURSE
  "libiri_workload.a"
)
