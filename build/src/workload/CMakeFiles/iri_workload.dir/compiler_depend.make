# Empty compiler generated dependencies file for iri_workload.
# This may be replaced when dependencies are built.
