file(REMOVE_RECURSE
  "CMakeFiles/iri_workload.dir/scenario.cc.o"
  "CMakeFiles/iri_workload.dir/scenario.cc.o.d"
  "CMakeFiles/iri_workload.dir/usage.cc.o"
  "CMakeFiles/iri_workload.dir/usage.cc.o.d"
  "libiri_workload.a"
  "libiri_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iri_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
