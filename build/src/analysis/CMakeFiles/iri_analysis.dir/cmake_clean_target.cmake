file(REMOVE_RECURSE
  "libiri_analysis.a"
)
