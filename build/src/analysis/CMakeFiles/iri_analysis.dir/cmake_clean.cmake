file(REMOVE_RECURSE
  "CMakeFiles/iri_analysis.dir/series.cc.o"
  "CMakeFiles/iri_analysis.dir/series.cc.o.d"
  "CMakeFiles/iri_analysis.dir/spectrum.cc.o"
  "CMakeFiles/iri_analysis.dir/spectrum.cc.o.d"
  "CMakeFiles/iri_analysis.dir/ssa.cc.o"
  "CMakeFiles/iri_analysis.dir/ssa.cc.o.d"
  "libiri_analysis.a"
  "libiri_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iri_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
