# Empty compiler generated dependencies file for iri_analysis.
# This may be replaced when dependencies are built.
