
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/series.cc" "src/analysis/CMakeFiles/iri_analysis.dir/series.cc.o" "gcc" "src/analysis/CMakeFiles/iri_analysis.dir/series.cc.o.d"
  "/root/repo/src/analysis/spectrum.cc" "src/analysis/CMakeFiles/iri_analysis.dir/spectrum.cc.o" "gcc" "src/analysis/CMakeFiles/iri_analysis.dir/spectrum.cc.o.d"
  "/root/repo/src/analysis/ssa.cc" "src/analysis/CMakeFiles/iri_analysis.dir/ssa.cc.o" "gcc" "src/analysis/CMakeFiles/iri_analysis.dir/ssa.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netbase/CMakeFiles/iri_netbase.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
