
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/classifier.cc" "src/core/CMakeFiles/iri_core.dir/classifier.cc.o" "gcc" "src/core/CMakeFiles/iri_core.dir/classifier.cc.o.d"
  "/root/repo/src/core/monitor.cc" "src/core/CMakeFiles/iri_core.dir/monitor.cc.o" "gcc" "src/core/CMakeFiles/iri_core.dir/monitor.cc.o.d"
  "/root/repo/src/core/report.cc" "src/core/CMakeFiles/iri_core.dir/report.cc.o" "gcc" "src/core/CMakeFiles/iri_core.dir/report.cc.o.d"
  "/root/repo/src/core/snapshot.cc" "src/core/CMakeFiles/iri_core.dir/snapshot.cc.o" "gcc" "src/core/CMakeFiles/iri_core.dir/snapshot.cc.o.d"
  "/root/repo/src/core/stats.cc" "src/core/CMakeFiles/iri_core.dir/stats.cc.o" "gcc" "src/core/CMakeFiles/iri_core.dir/stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/iri_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mrt/CMakeFiles/iri_mrt.dir/DependInfo.cmake"
  "/root/repo/build/src/bgp/CMakeFiles/iri_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/netbase/CMakeFiles/iri_netbase.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
