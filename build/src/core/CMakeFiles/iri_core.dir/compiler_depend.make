# Empty compiler generated dependencies file for iri_core.
# This may be replaced when dependencies are built.
