file(REMOVE_RECURSE
  "CMakeFiles/iri_core.dir/classifier.cc.o"
  "CMakeFiles/iri_core.dir/classifier.cc.o.d"
  "CMakeFiles/iri_core.dir/monitor.cc.o"
  "CMakeFiles/iri_core.dir/monitor.cc.o.d"
  "CMakeFiles/iri_core.dir/report.cc.o"
  "CMakeFiles/iri_core.dir/report.cc.o.d"
  "CMakeFiles/iri_core.dir/snapshot.cc.o"
  "CMakeFiles/iri_core.dir/snapshot.cc.o.d"
  "CMakeFiles/iri_core.dir/stats.cc.o"
  "CMakeFiles/iri_core.dir/stats.cc.o.d"
  "libiri_core.a"
  "libiri_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iri_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
