file(REMOVE_RECURSE
  "libiri_core.a"
)
