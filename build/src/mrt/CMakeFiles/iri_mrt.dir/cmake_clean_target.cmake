file(REMOVE_RECURSE
  "libiri_mrt.a"
)
