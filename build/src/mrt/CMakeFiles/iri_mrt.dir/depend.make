# Empty dependencies file for iri_mrt.
# This may be replaced when dependencies are built.
