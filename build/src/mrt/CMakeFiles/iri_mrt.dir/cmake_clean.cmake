file(REMOVE_RECURSE
  "CMakeFiles/iri_mrt.dir/log.cc.o"
  "CMakeFiles/iri_mrt.dir/log.cc.o.d"
  "libiri_mrt.a"
  "libiri_mrt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iri_mrt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
