# Empty dependencies file for iri_bgp.
# This may be replaced when dependencies are built.
