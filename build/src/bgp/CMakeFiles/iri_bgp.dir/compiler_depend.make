# Empty compiler generated dependencies file for iri_bgp.
# This may be replaced when dependencies are built.
