
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bgp/aggregation.cc" "src/bgp/CMakeFiles/iri_bgp.dir/aggregation.cc.o" "gcc" "src/bgp/CMakeFiles/iri_bgp.dir/aggregation.cc.o.d"
  "/root/repo/src/bgp/attributes.cc" "src/bgp/CMakeFiles/iri_bgp.dir/attributes.cc.o" "gcc" "src/bgp/CMakeFiles/iri_bgp.dir/attributes.cc.o.d"
  "/root/repo/src/bgp/dampening.cc" "src/bgp/CMakeFiles/iri_bgp.dir/dampening.cc.o" "gcc" "src/bgp/CMakeFiles/iri_bgp.dir/dampening.cc.o.d"
  "/root/repo/src/bgp/decision.cc" "src/bgp/CMakeFiles/iri_bgp.dir/decision.cc.o" "gcc" "src/bgp/CMakeFiles/iri_bgp.dir/decision.cc.o.d"
  "/root/repo/src/bgp/message.cc" "src/bgp/CMakeFiles/iri_bgp.dir/message.cc.o" "gcc" "src/bgp/CMakeFiles/iri_bgp.dir/message.cc.o.d"
  "/root/repo/src/bgp/path_regex.cc" "src/bgp/CMakeFiles/iri_bgp.dir/path_regex.cc.o" "gcc" "src/bgp/CMakeFiles/iri_bgp.dir/path_regex.cc.o.d"
  "/root/repo/src/bgp/policy.cc" "src/bgp/CMakeFiles/iri_bgp.dir/policy.cc.o" "gcc" "src/bgp/CMakeFiles/iri_bgp.dir/policy.cc.o.d"
  "/root/repo/src/bgp/rib.cc" "src/bgp/CMakeFiles/iri_bgp.dir/rib.cc.o" "gcc" "src/bgp/CMakeFiles/iri_bgp.dir/rib.cc.o.d"
  "/root/repo/src/bgp/session.cc" "src/bgp/CMakeFiles/iri_bgp.dir/session.cc.o" "gcc" "src/bgp/CMakeFiles/iri_bgp.dir/session.cc.o.d"
  "/root/repo/src/bgp/types.cc" "src/bgp/CMakeFiles/iri_bgp.dir/types.cc.o" "gcc" "src/bgp/CMakeFiles/iri_bgp.dir/types.cc.o.d"
  "/root/repo/src/bgp/update_packer.cc" "src/bgp/CMakeFiles/iri_bgp.dir/update_packer.cc.o" "gcc" "src/bgp/CMakeFiles/iri_bgp.dir/update_packer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netbase/CMakeFiles/iri_netbase.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
