file(REMOVE_RECURSE
  "CMakeFiles/iri_bgp.dir/aggregation.cc.o"
  "CMakeFiles/iri_bgp.dir/aggregation.cc.o.d"
  "CMakeFiles/iri_bgp.dir/attributes.cc.o"
  "CMakeFiles/iri_bgp.dir/attributes.cc.o.d"
  "CMakeFiles/iri_bgp.dir/dampening.cc.o"
  "CMakeFiles/iri_bgp.dir/dampening.cc.o.d"
  "CMakeFiles/iri_bgp.dir/decision.cc.o"
  "CMakeFiles/iri_bgp.dir/decision.cc.o.d"
  "CMakeFiles/iri_bgp.dir/message.cc.o"
  "CMakeFiles/iri_bgp.dir/message.cc.o.d"
  "CMakeFiles/iri_bgp.dir/path_regex.cc.o"
  "CMakeFiles/iri_bgp.dir/path_regex.cc.o.d"
  "CMakeFiles/iri_bgp.dir/policy.cc.o"
  "CMakeFiles/iri_bgp.dir/policy.cc.o.d"
  "CMakeFiles/iri_bgp.dir/rib.cc.o"
  "CMakeFiles/iri_bgp.dir/rib.cc.o.d"
  "CMakeFiles/iri_bgp.dir/session.cc.o"
  "CMakeFiles/iri_bgp.dir/session.cc.o.d"
  "CMakeFiles/iri_bgp.dir/types.cc.o"
  "CMakeFiles/iri_bgp.dir/types.cc.o.d"
  "CMakeFiles/iri_bgp.dir/update_packer.cc.o"
  "CMakeFiles/iri_bgp.dir/update_packer.cc.o.d"
  "libiri_bgp.a"
  "libiri_bgp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iri_bgp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
