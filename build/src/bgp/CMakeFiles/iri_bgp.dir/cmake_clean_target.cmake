file(REMOVE_RECURSE
  "libiri_bgp.a"
)
