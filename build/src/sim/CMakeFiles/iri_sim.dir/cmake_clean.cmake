file(REMOVE_RECURSE
  "CMakeFiles/iri_sim.dir/forwarding.cc.o"
  "CMakeFiles/iri_sim.dir/forwarding.cc.o.d"
  "CMakeFiles/iri_sim.dir/link.cc.o"
  "CMakeFiles/iri_sim.dir/link.cc.o.d"
  "CMakeFiles/iri_sim.dir/router.cc.o"
  "CMakeFiles/iri_sim.dir/router.cc.o.d"
  "libiri_sim.a"
  "libiri_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iri_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
