# Empty dependencies file for iri_sim.
# This may be replaced when dependencies are built.
