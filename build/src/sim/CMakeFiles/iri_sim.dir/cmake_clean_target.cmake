file(REMOVE_RECURSE
  "libiri_sim.a"
)
