file(REMOVE_RECURSE
  "CMakeFiles/iri_topology.dir/universe.cc.o"
  "CMakeFiles/iri_topology.dir/universe.cc.o.d"
  "libiri_topology.a"
  "libiri_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iri_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
