file(REMOVE_RECURSE
  "libiri_topology.a"
)
