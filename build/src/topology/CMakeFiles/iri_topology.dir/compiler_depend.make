# Empty compiler generated dependencies file for iri_topology.
# This may be replaced when dependencies are built.
