file(REMOVE_RECURSE
  "libiri_igp.a"
)
