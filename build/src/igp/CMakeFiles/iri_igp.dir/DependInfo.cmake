
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/igp/igp.cc" "src/igp/CMakeFiles/iri_igp.dir/igp.cc.o" "gcc" "src/igp/CMakeFiles/iri_igp.dir/igp.cc.o.d"
  "/root/repo/src/igp/redistribution.cc" "src/igp/CMakeFiles/iri_igp.dir/redistribution.cc.o" "gcc" "src/igp/CMakeFiles/iri_igp.dir/redistribution.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/iri_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/bgp/CMakeFiles/iri_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/netbase/CMakeFiles/iri_netbase.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
