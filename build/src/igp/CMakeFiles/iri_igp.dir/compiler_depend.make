# Empty compiler generated dependencies file for iri_igp.
# This may be replaced when dependencies are built.
