# Empty dependencies file for iri_igp.
# This may be replaced when dependencies are built.
