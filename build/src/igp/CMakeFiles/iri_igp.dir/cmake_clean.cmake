file(REMOVE_RECURSE
  "CMakeFiles/iri_igp.dir/igp.cc.o"
  "CMakeFiles/iri_igp.dir/igp.cc.o.d"
  "CMakeFiles/iri_igp.dir/redistribution.cc.o"
  "CMakeFiles/iri_igp.dir/redistribution.cc.o.d"
  "libiri_igp.a"
  "libiri_igp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iri_igp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
