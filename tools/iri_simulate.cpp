// iri_simulate — generate an MRT update log from a simulated exchange.
//
//   iri_simulate --out=exchange.mrt [--days=7] [--scale=64] [--providers=14]
//                [--seed=1996] [--patho] [--upgrade] [--all-stateful]
//                [--all-jittered] [--dampen]
//
// The produced log replays through iri_analyze (or any code built on
// mrt::Reader + core::ExchangeMonitor).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/stats.h"
#include "mrt/log.h"
#include "workload/scenario.h"

using namespace iri;

namespace {

const char* FlagValue(int argc, char** argv, const char* name) {
  const std::size_t len = std::strlen(name);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], name, len) == 0 && argv[i][len] == '=') {
      return argv[i] + len + 1;
    }
  }
  return nullptr;
}

bool HasFlag(int argc, char** argv, const char* name) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  if (HasFlag(argc, argv, "--help")) {
    std::printf(
        "usage: iri_simulate --out=FILE [--days=D] [--scale=N] "
        "[--providers=P] [--seed=S] [--patho] [--upgrade] [--all-stateful] "
        "[--all-jittered] [--dampen]\n");
    return 0;
  }
  const char* out = FlagValue(argc, argv, "--out");
  if (out == nullptr) {
    std::fprintf(stderr, "iri_simulate: --out=FILE is required\n");
    return 2;
  }

  workload::ScenarioConfig cfg;
  cfg.duration = Duration::Days(
      FlagValue(argc, argv, "--days") ? std::atof(FlagValue(argc, argv, "--days")) : 7.0);
  const double scale_den =
      FlagValue(argc, argv, "--scale") ? std::atof(FlagValue(argc, argv, "--scale")) : 64.0;
  cfg.topology.scale = 1.0 / scale_den;
  if (const char* v = FlagValue(argc, argv, "--providers")) {
    cfg.topology.num_providers = std::atoi(v);
  }
  if (const char* v = FlagValue(argc, argv, "--seed")) {
    cfg.seed = static_cast<std::uint64_t>(std::atoll(v));
    cfg.topology.seed = cfg.seed + 1;
  }
  cfg.patho_enabled = HasFlag(argc, argv, "--patho");
  cfg.upgrade_enabled = HasFlag(argc, argv, "--upgrade");
  cfg.force_all_stateful = HasFlag(argc, argv, "--all-stateful");
  cfg.force_all_jittered = HasFlag(argc, argv, "--all-jittered");
  cfg.providers_dampen = HasFlag(argc, argv, "--dampen");

  workload::ExchangeScenario scenario(cfg);
  mrt::Writer writer(out);
  if (!writer.ok()) {
    std::fprintf(stderr, "iri_simulate: cannot open %s for writing\n", out);
    return 1;
  }
  scenario.monitor().SetMrtWriter(&writer);

  core::CategoryCounts counts;
  scenario.monitor().AddSink(
      [&counts](const core::ClassifiedEvent& ev) { counts.Add(ev); });

  std::fprintf(stderr,
               "simulating %.1f day(s) at 1/%.0f scale, %d providers...\n",
               cfg.duration.ToHours() / 24.0, scale_den,
               cfg.topology.num_providers);
  scenario.Run();
  writer.Close();

  std::fprintf(stderr,
               "wrote %llu records (%llu prefix events: %llu announcements, "
               "%llu withdrawals) to %s\n",
               static_cast<unsigned long long>(writer.records_written()),
               static_cast<unsigned long long>(counts.Total()),
               static_cast<unsigned long long>(counts.announcements),
               static_cast<unsigned long long>(counts.withdrawals), out);
  return 0;
}
