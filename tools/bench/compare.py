#!/usr/bin/env python3
"""Compare benchmark JSON against a committed baseline and flag regressions.

Understands both JSON shapes the repo produces:

  * google-benchmark output (bench_micro_perf writes BENCH_micro_perf.json):
    {"benchmarks": [{"name": ..., "real_time": ..., "time_unit": ...}, ...]}
    — lower is better; compared on real_time, normalized to nanoseconds.
  * bench_parallel_scaling output (BENCH_parallel.json):
    {"runs": [{"threads": N, "updates_per_sec": X, ...}, ...]}
    — higher is better; compared on updates_per_sec, keyed by thread count.
  * bench_full_paper output (BENCH_full_paper.json):
    {"metrics": [{"name": ..., "value": X, "higher_is_better": B}, ...]}
    — each metric declares its own direction.

Usage:
  tools/bench/compare.py BASELINE CURRENT [--threshold=0.05] [--warn-only]

Exit status is 1 when any metric regresses by more than the threshold,
unless --warn-only is given (CI uses --warn-only: timings from shared
runners jitter far beyond 5%, so the comparison is advisory there).
"""

from __future__ import annotations

import argparse
import json
import sys

# Multipliers to nanoseconds for google-benchmark time units.
_TIME_UNITS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_metrics(path: str) -> dict[str, tuple[float, bool]]:
    """Returns {metric name: (value, higher_is_better)}."""
    with open(path) as f:
        doc = json.load(f)
    metrics: dict[str, tuple[float, bool]] = {}
    if "benchmarks" in doc:
        for bench in doc["benchmarks"]:
            if bench.get("run_type") == "aggregate":
                continue
            unit = _TIME_UNITS.get(bench.get("time_unit", "ns"), 1.0)
            metrics[bench["name"]] = (float(bench["real_time"]) * unit, False)
    elif "runs" in doc:
        for run in doc["runs"]:
            name = f"updates_per_sec/threads:{run['threads']}"
            metrics[name] = (float(run["updates_per_sec"]), True)
    elif "metrics" in doc:
        for metric in doc["metrics"]:
            metrics[metric["name"]] = (float(metric["value"]),
                                       bool(metric["higher_is_better"]))
    else:
        raise ValueError(f"{path}: unrecognized benchmark JSON shape")
    return metrics


def load_info(path: str) -> dict[str, float]:
    """Returns {name: value} for informational (never-regressing) fields.

    bench_parallel_scaling carries per-run drain/merge-wait telemetry and a
    per-shard load breakdown ("shard_load": [{shard, events, depth_peak}]).
    Those are wall-clock- or partitioning-shaped, so they are reported as
    deltas for the reader but can never fail the comparison.
    """
    with open(path) as f:
        doc = json.load(f)
    info: dict[str, float] = {}
    for run in doc.get("runs", []):
        key = f"threads:{run['threads']}"
        for field in ("drain_calls", "merge_wait_ns"):
            if field in run:
                info[f"{field}/{key}"] = float(run[field])
    for load in doc.get("shard_load", []):
        key = f"shard:{load['shard']}"
        for field in ("events", "depth_peak"):
            if field in load:
                info[f"shard_load.{field}/{key}"] = float(load[field])
    return info


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=0.05,
                        help="regression ratio that fails (default 0.05)")
    parser.add_argument("--warn-only", action="store_true",
                        help="report regressions but exit 0")
    args = parser.parse_args()

    baseline = load_metrics(args.baseline)
    current = load_metrics(args.current)

    regressions = 0
    for name, (base_value, higher_is_better) in sorted(baseline.items()):
        if name not in current:
            print(f"MISSING  {name}: in baseline but not in current run")
            regressions += 1
            continue
        value, _ = current[name]
        if base_value <= 0:
            continue
        # Positive delta = worse, for either metric direction.
        if higher_is_better:
            delta = (base_value - value) / base_value
        else:
            delta = (value - base_value) / base_value
        status = "REGRESS" if delta > args.threshold else "ok"
        if status == "REGRESS":
            regressions += 1
        print(f"{status:8s} {name}: baseline={base_value:.1f} "
              f"current={value:.1f} ({delta:+.1%})")
    for name in sorted(set(current) - set(baseline)):
        print(f"NEW      {name}: {current[name][0]:.1f} (no baseline)")

    # Informational telemetry: printed for the reader, never a regression.
    base_info = load_info(args.baseline)
    cur_info = load_info(args.current)
    for name in sorted(set(base_info) | set(cur_info)):
        if name not in cur_info:
            print(f"info     {name}: baseline={base_info[name]:.0f} "
                  f"(absent in current)")
        elif name not in base_info:
            print(f"info     {name}: {cur_info[name]:.0f} (no baseline)")
        else:
            base_value, value = base_info[name], cur_info[name]
            delta = ((value - base_value) / base_value
                     if base_value else float("inf") if value else 0.0)
            print(f"info     {name}: baseline={base_value:.0f} "
                  f"current={value:.0f} ({delta:+.1%})")

    if regressions:
        print(f"{regressions} metric(s) regressed more than "
              f"{args.threshold:.0%}", file=sys.stderr)
        return 0 if args.warn_only else 1
    print("no regressions beyond threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
