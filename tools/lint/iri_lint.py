#!/usr/bin/env python3
"""Repo-specific determinism and layering lint for iri.

Static analyzers know C++; they do not know that this repo's whole value
proposition is bit-for-bit reproducible scenarios. This lint enforces the
invariants that make that true and that clang-tidy cannot express:

  rng            No rand()/srand()/std::random_device/<random> outside
                 netbase/rng.h. Every stochastic draw must come from a seeded
                 Xoshiro stream or reruns stop reproducing.
  wall-clock     No wall-clock reads (std::chrono clocks, time(),
                 gettimeofday, ...) outside netbase/time.{h,cc}. All of iri
                 runs on simulated time.
  unordered-iteration
                 No iteration over std::unordered_map/std::unordered_set in
                 code paths that write reports, MRT logs, or observability
                 output (core/report, core/snapshot, core/monitor, src/mrt/,
                 src/obs/, tools/). Hash-order iteration varies across
                 libstdc++ versions and would break byte-identical scenario
                 outputs — including the metrics snapshots embedded in the
                 golden digests.
  threads        No raw threading or shared-mutable-state primitives
                 (std::thread, std::jthread, std::async, mutexes,
                 condition variables, std::atomic) outside
                 src/sim/parallel.cc. Partition parallelism through
                 sim::ParallelFor is the only sanctioned concurrency: it is
                 the shape whose outputs are interleaving-independent
                 (DESIGN.md §8). The invariant-audit counters in
                 core/invariants.h keep their std::atomic exemption.
  pragma-once    Every header under src/ starts its include guard with
                 `#pragma once`.
  include-layering
                 Layer hygiene: netbase includes only netbase; obs only
                 {obs, netbase}; bgp only {bgp, obs, netbase};
                 sim/mrt/topology sit above bgp; core sits above sim/mrt;
                 workload on top. Sanctioned exceptions: any layer above
                 netbase may include core/invariants.h (built as the
                 bottom-of-stack iri_invariants library precisely so this
                 is link-safe) and the header-only core/arena.h.

Suppress a finding (sparingly, with a reason in a nearby comment) by putting
`iri-lint: allow(<rule>)` in a comment on the offending line.

Division of labour with iri_det.py (the AST-level semantic analyzer): when
build/compile_commands.json exists, the threads, unordered-iteration, and
include-layering rules are delegated for every file in the compilation
closure — iri_det verifies those same invariants semantically (call-graph
reachability instead of per-file regex), so running both would double-report
with the regex version as the less precise voice. The regex rules still
apply to files *outside* the compilation database (dead code, not-yet-wired
sources), and the rng / wall-clock / pragma-once rules stay regex everywhere
(they are textual properties; the AST adds nothing). `--no-delegate`
restores full regex coverage, e.g. when the build tree is stale.

Usage:
  iri_lint.py [--root REPO_ROOT]     lint the tree (default: repo root
                                     inferred from this file's location)
  iri_lint.py --no-delegate          ignore compile_commands.json and apply
                                     every regex rule to every file
  iri_lint.py --self-test            verify the linter catches seeded
                                     violations (run by CTest)

Exit status: 0 clean, 1 violations found, 2 internal/usage error.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys
import tempfile

# --------------------------------------------------------------------------
# File discovery

SRC_EXTENSIONS = {".h", ".hpp", ".cc", ".cpp"}

# iri_det's self-test fixtures are violations *on purpose* — the analyzer's
# own ctest asserts it flags them. They are not product code and must not
# fail the tree lint.
EXCLUDED_PREFIXES = ("tools/lint/detfixtures/",)


def lintable_files(root: pathlib.Path) -> list[pathlib.Path]:
    files = []
    for top in ("src", "tools"):
        base = root / top
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix not in SRC_EXTENSIONS:
                continue
            rel = path.relative_to(root).as_posix()
            if rel.startswith(EXCLUDED_PREFIXES):
                continue
            files.append(path)
    return files


# Rules superseded by iri_det.py's AST-level passes for files inside the
# compilation-database closure (see module docstring).
DELEGATED_RULES_NOTE = ("threads", "unordered-iteration", "include-layering")


def ast_covered_files(root: pathlib.Path) -> set[pathlib.Path]:
    """Files iri_det.py verifies semantically; empty set disables delegation."""
    try:
        sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
        from detlib import compdb  # noqa: PLC0415  (optional sibling package)
    except ImportError:
        return set()
    finally:
        sys.path.pop(0)
    compdb_path = compdb.find_compdb(root)
    if compdb_path is None:
        return set()
    try:
        return compdb.covered_files(compdb_path, root)
    except compdb.CompDbError:
        return set()


# --------------------------------------------------------------------------
# Comment/string scrubbing (keeps line structure so reported line numbers
# stay valid; suppression markers are collected before scrubbing).

ALLOW_RE = re.compile(r"iri-lint:\s*allow\(([a-z-]+(?:\s*,\s*[a-z-]+)*)\)")


def collect_suppressions(lines: list[str]) -> dict[int, set[str]]:
    out: dict[int, set[str]] = {}
    for i, line in enumerate(lines, start=1):
        m = ALLOW_RE.search(line)
        if m:
            out[i] = {r.strip() for r in m.group(1).split(",")}
    return out


def scrub(text: str) -> str:
    """Blanks out comments, string and char literals, preserving newlines."""

    def blank(match: re.Match) -> str:
        return re.sub(r"[^\n]", " ", match.group(0))

    # Order matters: raw strings, then block comments, then line comments,
    # then plain string/char literals.
    text = re.sub(r'R"([^(\s]*)\((?:.|\n)*?\)\1"', blank, text)
    text = re.sub(r"/\*(?:.|\n)*?\*/", blank, text)
    text = re.sub(r"//[^\n]*", blank, text)
    text = re.sub(r'"(?:[^"\\\n]|\\.)*"', blank, text)
    text = re.sub(r"'(?:[^'\\\n]|\\.)*'", blank, text)
    return text


# --------------------------------------------------------------------------
# Rules

class Finding:
    def __init__(self, path: pathlib.Path, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


RNG_EXEMPT = {"src/netbase/rng.h"}
RNG_PATTERNS = [
    (re.compile(r"\bstd::random_device\b"), "std::random_device"),
    (re.compile(r"\bstd::mt19937(?:_64)?\b"), "std::mt19937"),
    (re.compile(r"\bstd::default_random_engine\b"), "std::default_random_engine"),
    (re.compile(r"(?<![\w:])s?rand\s*\("), "rand()/srand()"),
    (re.compile(r"(?<![\w:])d?random\s*\("), "random()/drandom()"),
    (re.compile(r"(?<![\w:])[ed]rand48\s*\("), "*rand48()"),
    (re.compile(r"#\s*include\s*<random>"), "<random>"),
]

CLOCK_EXEMPT = {"src/netbase/time.h", "src/netbase/time.cc"}
CLOCK_PATTERNS = [
    (re.compile(r"\bstd::chrono::(?:system|steady|high_resolution)_clock\b"),
     "std::chrono clock"),
    (re.compile(r"(?<![\w:])time\s*\(\s*(?:nullptr|NULL|0|&)"), "time()"),
    (re.compile(r"\bgettimeofday\s*\("), "gettimeofday()"),
    (re.compile(r"\bclock_gettime\s*\("), "clock_gettime()"),
    (re.compile(r"(?<![\w:])clock\s*\(\s*\)"), "clock()"),
    (re.compile(r"(?<![\w:])(?:localtime|gmtime)(?:_r)?\s*\("), "localtime()/gmtime()"),
]

# Raw threading lives in exactly one file: the fork-join pool behind the
# partitioned multi-exchange runner. Everything else must go through
# sim::ParallelFor so parallelism stays interleaving-independent.
THREAD_EXEMPT = {"src/sim/parallel.cc"}
# std::atomic additionally allowed for the invariant-audit counters.
ATOMIC_EXEMPT = THREAD_EXEMPT | {"src/core/invariants.h"}
THREAD_PATTERNS = [
    (re.compile(r"\bstd::(?:jthread|thread)\b"), "std::thread/std::jthread"),
    (re.compile(r"\bstd::async\b"), "std::async"),
    (re.compile(r"\bstd::(?:recursive_|timed_|shared_)?mutex\b"),
     "std::*mutex"),
    (re.compile(r"\bstd::condition_variable(?:_any)?\b"),
     "std::condition_variable"),
    (re.compile(r"\bstd::(?:counting_|binary_)?semaphore\b"),
     "std::semaphore"),
    (re.compile(r"#\s*include\s*<(?:thread|future|mutex|shared_mutex|"
                r"condition_variable|stop_token|semaphore|barrier|latch)>"),
     "threading header"),
]
ATOMIC_PATTERNS = [
    (re.compile(r"\bstd::atomic(?:_ref|_flag)?\b"), "std::atomic"),
    (re.compile(r"#\s*include\s*<atomic>"), "<atomic>"),
]

# Files that produce user-visible reports or on-disk logs; iteration order
# inside them must be deterministic.
OUTPUT_PATH_RES = [
    re.compile(r"^src/core/(report|snapshot|monitor)\.(h|cc)$"),
    re.compile(r"^src/mrt/"),
    # Metrics snapshots and trace emission must be byte-stable: the golden
    # digests embed SnapshotText() output verbatim.
    re.compile(r"^src/obs/"),
    re.compile(r"^tools/"),
]

UNORDERED_DECL_RE = re.compile(
    r"\bstd::unordered_(?:map|set|multimap|multiset)\s*<[^;{]*?>\s+(\w+)\s*[;={(]")
UNORDERED_INLINE_ITER_RE = re.compile(
    r"for\s*\([^;)]*:\s*[^)]*\bunordered_(?:map|set|multimap|multiset)\b")

# Layer model. Key: directory under src/. Value: directories its files may
# include from (via #include "dir/...").
LAYER_ALLOWED = {
    "netbase": {"netbase"},
    # Observability sits just above netbase so every higher layer can feed
    # instruments without new upward dependencies (DESIGN.md §9).
    "obs": {"obs", "netbase"},
    "bgp": {"bgp", "obs", "netbase"},
    "sim": {"sim", "bgp", "obs", "netbase"},
    "mrt": {"mrt", "bgp", "obs", "netbase"},
    "topology": {"topology", "bgp", "obs", "netbase"},
    "analysis": {"analysis", "obs", "netbase"},
    "igp": {"igp", "sim", "bgp", "obs", "netbase"},
    "core": {"core", "mrt", "sim", "bgp", "obs", "netbase"},
    "workload": {"workload", "core", "igp", "mrt", "sim", "topology",
                 "analysis", "bgp", "obs", "netbase"},
}
# Sanctioned upward includes: foundational primitives that live in core/ but
# link from the bottom of the stack — the invariant-audit macros and the
# header-only arena allocator (bgp's intern tables store canonical objects
# in an Arena; see DESIGN.md §12).
LAYERING_EXCEPTIONS = {"core/invariants.h", "core/arena.h"}
# netbase stays completely dependency-free, exceptions included.
NO_EXCEPTION_LAYERS = {"netbase"}

INCLUDE_RE = re.compile(r'#\s*include\s*"([^"]+)"')


def lint_file(path: pathlib.Path, rel: str, text: str,
              ast_covered: bool = False) -> list[Finding]:
    findings: list[Finding] = []
    raw_lines = text.splitlines()
    suppressions = collect_suppressions(raw_lines)
    scrubbed_lines = scrub(text).splitlines()

    def report(line_no: int, rule: str, message: str) -> None:
        if rule in suppressions.get(line_no, set()):
            return
        findings.append(Finding(path, line_no, rule, message))

    # rng / wall-clock ------------------------------------------------------
    for line_no, line in enumerate(scrubbed_lines, start=1):
        if rel not in RNG_EXEMPT:
            for pattern, what in RNG_PATTERNS:
                if pattern.search(line):
                    report(line_no, "rng",
                           f"{what} outside netbase/rng.h; draw from a "
                           "seeded iri::Rng stream instead")
        if rel not in CLOCK_EXEMPT:
            for pattern, what in CLOCK_PATTERNS:
                if pattern.search(line):
                    report(line_no, "wall-clock",
                           f"{what} outside netbase/time.*; iri runs on "
                           "simulated time only")
        if rel not in THREAD_EXEMPT and not ast_covered:
            for pattern, what in THREAD_PATTERNS:
                if pattern.search(line):
                    report(line_no, "threads",
                           f"{what} outside sim/parallel.cc; use "
                           "sim::ParallelFor over independent partitions "
                           "(the only interleaving-independent shape)")
        if rel not in ATOMIC_EXEMPT and not ast_covered:
            for pattern, what in ATOMIC_PATTERNS:
                if pattern.search(line):
                    report(line_no, "threads",
                           f"{what} outside sim/parallel.cc and "
                           "core/invariants.h; shared mutable state breaks "
                           "bit-for-bit reproducibility")

    # unordered-iteration ---------------------------------------------------
    if not ast_covered and any(r.search(rel) for r in OUTPUT_PATH_RES):
        unordered_names = set(UNORDERED_DECL_RE.findall(scrub(text)))
        iter_res = []
        for name in unordered_names:
            iter_res.append(re.compile(
                r"for\s*\([^;)]*:\s*[^)]*\b" + re.escape(name) + r"\b"))
            iter_res.append(re.compile(
                r"\b" + re.escape(name) + r"\s*\.\s*c?begin\s*\("))
        for line_no, line in enumerate(scrubbed_lines, start=1):
            if UNORDERED_INLINE_ITER_RE.search(line) or any(
                    r.search(line) for r in iter_res):
                report(line_no, "unordered-iteration",
                       "iteration over an unordered container in an "
                       "output-writing path; hash order is not "
                       "deterministic across libstdc++ versions — sort "
                       "first or use std::map")

    # pragma-once -----------------------------------------------------------
    if path.suffix in {".h", ".hpp"} and rel.startswith("src/"):
        if not any(re.match(r"#\s*pragma\s+once\b", l) for l in raw_lines):
            report(1, "pragma-once", "header lacks #pragma once")

    # include-layering ------------------------------------------------------
    parts = pathlib.PurePosixPath(rel).parts
    if (not ast_covered and len(parts) >= 3 and parts[0] == "src"
            and parts[1] in LAYER_ALLOWED):
        layer = parts[1]
        allowed = LAYER_ALLOWED[layer]
        # Raw lines: the scrubber blanks the quoted include path.
        for line_no, line in enumerate(raw_lines, start=1):
            m = INCLUDE_RE.search(line)
            if not m:
                continue
            target = m.group(1)
            if target in LAYERING_EXCEPTIONS and layer not in NO_EXCEPTION_LAYERS:
                continue
            target_dir = target.split("/", 1)[0] if "/" in target else layer
            if target_dir in LAYER_ALLOWED and target_dir not in allowed:
                report(line_no, "include-layering",
                       f"layer '{layer}' may not include '{target}' "
                       f"(allowed: {', '.join(sorted(allowed))})")

    return findings


def lint_tree(root: pathlib.Path, delegate: bool = True) -> list[Finding]:
    findings: list[Finding] = []
    covered = ast_covered_files(root) if delegate else set()
    for path in lintable_files(root):
        rel = path.relative_to(root).as_posix()
        try:
            text = path.read_text(encoding="utf-8", errors="replace")
        except OSError as err:
            findings.append(Finding(path, 1, "io", f"unreadable: {err}"))
            continue
        findings.extend(lint_file(path, rel, text,
                                  ast_covered=path.resolve() in covered))
    return findings


# --------------------------------------------------------------------------
# Self-test: seed one violation per rule into a scratch tree and require the
# linter to flag each; also require a clean file and a suppressed line to
# pass. This is what keeps the lint itself honest in CI.

SELF_TEST_CASES = {
    # rel path -> (contents, set of rules that must fire)
    "src/sim/bad_rng.cc": (
        "#include <random>\n"
        "int Draw() { return rand(); }\n",
        {"rng"},
    ),
    "src/core/bad_clock.cc": (
        "#include <ctime>\n"
        "long Now() { return time(nullptr); }\n",
        {"wall-clock"},
    ),
    "src/mrt/bad_iter.cc": (
        "#include <unordered_map>\n"
        "std::unordered_map<int, int> tally;\n"
        "int Sum() { int s = 0; for (auto& [k, v] : tally) s += v; return s; }\n",
        {"unordered-iteration"},
    ),
    "src/bgp/bad_guard.h": (
        "// no include guard at all\n"
        "struct Naked {};\n",
        {"pragma-once"},
    ),
    "src/netbase/bad_layering.h": (
        "#pragma once\n"
        '#include "bgp/rib.h"\n'
        '#include "core/invariants.h"\n',
        {"include-layering"},
    ),
    "src/core/bad_threads.cc": (
        "#include <thread>\n"
        "#include <mutex>\n"
        "std::mutex m;\n"
        "void Go() { std::thread t([] {}); t.join(); }\n",
        {"threads"},
    ),
    "src/workload/bad_atomic.cc": (
        "#include <atomic>\n"
        "std::atomic<int> shared_counter{0};\n",
        {"threads"},
    ),
    # The one sanctioned home for raw threading: the fork-join pool.
    "src/sim/parallel.cc": (
        "#include <atomic>\n"
        "#include <thread>\n"
        "void Pool() { std::thread t([] {}); t.join(); }\n",
        set(),
    ),
    # Invariant-audit counters keep their std::atomic exemption (but not a
    # std::thread one).
    "src/core/invariants.h": (
        "#pragma once\n"
        "#include <atomic>\n"
        "inline std::atomic<unsigned long> g_audit_count{0};\n",
        set(),
    ),
    # Metrics/trace emission paths are output paths: snapshot bytes feed the
    # golden digests, so unordered iteration there is a determinism bug.
    "src/obs/bad_snapshot.cc": (
        "#include <unordered_map>\n"
        "std::unordered_map<int, long> counters;\n"
        "long Dump() { long s = 0;"
        " for (auto& [k, v] : counters) s += v; return s; }\n",
        {"unordered-iteration"},
    ),
    # obs may be included from bgp up, and may itself reach netbase plus the
    # sanctioned core/invariants.h exception — none of that may fire.
    "src/obs/clean_metrics.h": (
        "#pragma once\n"
        '#include "netbase/time.h"\n'
        '#include "core/invariants.h"\n'
        "inline int Instrument() { return 7; }\n",
        set(),
    ),
    "src/netbase/bad_obs_layering.cc": (
        '#include "obs/metrics.h"\n',
        {"include-layering"},
    ),
    "src/bgp/clean.h": (
        "#pragma once\n"
        '#include "netbase/time.h"\n'
        '#include "obs/trace.h"\n'
        '#include "core/invariants.h"\n'
        "// rand() in a comment must not fire\n"
        "inline int Fine() { return 4; }\n",
        set(),
    ),
    "src/sim/suppressed.cc": (
        "int Draw() { return rand(); }  // iri-lint: allow(rng) seeded fallback\n",
        set(),
    ),
    # The streaming-telemetry layer (timeseries/health) lives in obs: it
    # consumes only tick-sampled counts and peer ids, so obs -> {obs,
    # netbase} stays closed. A clean detector file must not fire anything.
    "src/obs/clean_health.cc": (
        '#include "obs/health.h"\n'
        '#include "netbase/time.h"\n'
        '#include "obs/metrics.h"\n'
        '#include "obs/trace.h"\n'
        "inline int Detect() { return 1; }\n",
        set(),
    ),
    # ...and a detector reaching into the simulator (to peek at a router,
    # say) would invert the layering.
    "src/obs/bad_health_layering.cc": (
        '#include "sim/router.h"\n',
        {"include-layering"},
    ),
}


def self_test() -> int:
    failures: list[str] = []
    with tempfile.TemporaryDirectory(prefix="iri_lint_selftest_") as tmp:
        root = pathlib.Path(tmp)
        for rel, (contents, _) in SELF_TEST_CASES.items():
            path = root / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(contents, encoding="utf-8")
        findings = lint_tree(root)
        by_file: dict[str, set[str]] = {}
        for f in findings:
            by_file.setdefault(
                f.path.relative_to(root).as_posix(), set()).add(f.rule)
        for rel, (_, expected) in SELF_TEST_CASES.items():
            got = by_file.get(rel, set())
            missing = expected - got
            unexpected = got - expected
            if missing:
                failures.append(f"{rel}: expected rule(s) {sorted(missing)} "
                                "did not fire")
            if unexpected:
                failures.append(f"{rel}: unexpected rule(s) "
                                f"{sorted(unexpected)} fired")

        # Delegation: with a compile_commands.json covering bad_threads.cc
        # and bad_clock.cc, the AST-superseded rules go quiet for covered
        # files (iri_det owns them there), the textual rules keep firing,
        # and uncovered files keep full regex coverage.
        import json as _json
        build = root / "build"
        build.mkdir(exist_ok=True)
        covered_rels = ["src/core/bad_threads.cc", "src/core/bad_clock.cc"]
        (build / "compile_commands.json").write_text(_json.dumps([
            {"directory": str(root),
             "command": f"g++ -std=c++20 -c {root / rel} -o /dev/null",
             "file": str(root / rel)}
            for rel in covered_rels]), encoding="utf-8")
        delegated = lint_tree(root, delegate=True)
        by_file_d: dict[str, set[str]] = {}
        for f in delegated:
            by_file_d.setdefault(
                f.path.relative_to(root).as_posix(), set()).add(f.rule)
        if "threads" in by_file_d.get("src/core/bad_threads.cc", set()):
            failures.append("delegation: threads still fired for a "
                            "compdb-covered file")
        if "wall-clock" not in by_file_d.get("src/core/bad_clock.cc", set()):
            failures.append("delegation: wall-clock (textual rule) went "
                            "quiet for a covered file")
        if "threads" not in by_file_d.get("src/workload/bad_atomic.cc", set()):
            failures.append("delegation: threads went quiet for an "
                            "*uncovered* file")
        if "include-layering" not in by_file_d.get(
                "src/netbase/bad_layering.h", set()):
            failures.append("delegation: include-layering went quiet for an "
                            "uncovered header")
        # --no-delegate restores the baseline behaviour exactly.
        undelegated = lint_tree(root, delegate=False)
        if ({(f.path, f.line, f.rule) for f in undelegated}
                != {(f.path, f.line, f.rule) for f in findings}):
            failures.append("--no-delegate did not reproduce the full "
                            "regex finding set")
    if failures:
        print("iri_lint self-test FAILED:")
        for f in failures:
            print(f"  {f}")
        return 1
    print("iri_lint self-test passed "
          f"({len(SELF_TEST_CASES)} seeded cases + delegation).")
    return 0


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", type=pathlib.Path,
                        default=pathlib.Path(__file__).resolve().parents[2])
    parser.add_argument("--self-test", action="store_true")
    parser.add_argument("--no-delegate", action="store_true",
                        help="apply every regex rule to every file even when "
                             "compile_commands.json would let iri_det.py own "
                             "the semantic rules")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()

    if not (args.root / "src").is_dir():
        print(f"iri_lint: no src/ under {args.root}", file=sys.stderr)
        return 2

    delegate = not args.no_delegate
    findings = lint_tree(args.root, delegate=delegate)
    for f in findings:
        print(f)
    covered = len(ast_covered_files(args.root)) if delegate else 0
    mode = (f"delegating {'/'.join(DELEGATED_RULES_NOTE)} to iri_det for "
            f"{covered} compdb-covered file(s)" if covered
            else "full regex coverage")
    if findings:
        print(f"iri_lint: {len(findings)} finding(s) ({mode}).")
        return 1
    print(f"iri_lint: clean ({len(lintable_files(args.root))} files, {mode}).")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
