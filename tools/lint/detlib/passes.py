"""The five determinism verification passes over a detlib Model.

Each pass emits Finding records with a stable identity (check, file,
function, detail — line numbers are recorded for display but excluded from
the identity so the committed baseline survives unrelated edits).

Configuration lives in DetConfig. The defaults encode this repo's contract
(DESIGN.md §11): extend SINK_* / allowlists there when adding a new output
path, and add a fixture pair under tools/lint/detfixtures/ in the same
change.
"""

from __future__ import annotations

import dataclasses
import pathlib
import re

from .model import FunctionInfo, Model

# --------------------------------------------------------------------------
# Findings

CHECKS = (
    "wall-clock-taint",
    "unordered-in-output",
    "rng-discipline",
    "thread-confinement",
    "include-layering",
)


@dataclasses.dataclass
class Finding:
    check: str
    file: str
    line: int
    function: str  # qualified name, or "" for file-scope findings
    detail: str  # stable description of the violating construct
    message: str  # human-readable explanation (may include the call path)

    def key(self) -> str:
        return f"{self.check}|{self.file}|{self.function}|{self.detail}"

    def __str__(self) -> str:
        where = f" (in {self.function})" if self.function else ""
        return f"{self.file}:{self.line}: [{self.check}]{where} {self.message}"


# --------------------------------------------------------------------------
# Configuration

@dataclasses.dataclass
class DetConfig:
    # Output sink roots: taint must not flow into these, and no function
    # reachable from them may iterate an unordered container. A function is
    # a root if its qualified name matches sink_name_re, or if it is defined
    # in a file matching sink_file_re (whole-file sinks: the MRT writer, the
    # trace/series emitters, the classic report/snapshot formatters).
    sink_name_re: re.Pattern = re.compile(
        r"::(SnapshotText|SnapshotJson|Digest|EncodeRecord|LogMessage"
        r"|Append|Flush|Merge|FormatCategoryReport|FormatTable)$")
    sink_file_re: re.Pattern = re.compile(
        r"^src/(mrt/|obs/trace\.|obs/timeseries\.|core/(report|snapshot)\.)")
    # Per-shard aggregation roots (DESIGN.md §13): members of sharded
    # (per-shard state-holding) types that merge shard-local state into the
    # combined answer. Merged totals feed digests, so iterating an unordered
    # container keyed by shard during the merge is hash-order-dependent
    # output even though no Snapshot/Digest name appears in the chain.
    shard_merge_name_re: re.Pattern = re.compile(
        r"Shard\w*::(totals|total_events|Merge\w*|Combined\w*)$")
    # Sink roots are only meaningful in these layers; a `Flush` on some
    # simulator buffer is not an output sink. The fixture prefix keeps
    # --must-flag working on the analyzer's own gap fixtures (ordinary repo
    # runs exclude that tree via exclude_re anyway).
    sink_root_dirs: tuple = ("src/mrt/", "src/obs/", "src/core/",
                             "src/workload/", "tools/lint/detfixtures/")

    # Taint sources beyond construct kinds {wallclock, rng}: calls to these
    # function names taint even when the body is out of model.
    source_call_names: frozenset = frozenset({"WallClockNanos"})

    # Functions where taint propagation stops: the profiling layer reads the
    # wall clock but records it only into Stability::kWallClock instruments,
    # which every snapshot excludes by default (obs/profile.h).
    taint_allow_qname_re: re.Pattern = re.compile(
        r"(^|::)ScopedTimer(::|$)|::EnableWallClockProfile$")
    taint_allow_file_re: re.Pattern = re.compile(r"^src/obs/profile\.")
    # Files whose wall-clock constructs are the sanctioned implementation.
    wallclock_impl_files: frozenset = frozenset(
        {"src/netbase/time.h", "src/netbase/time.cc"})

    # RNG discipline: the seeded SplitMix64/Xoshiro implementation.
    rng_impl_files: frozenset = frozenset({"src/netbase/rng.h"})

    # Thread confinement.
    thread_files: frozenset = frozenset({"src/sim/parallel.cc"})
    atomic_files: frozenset = frozenset(
        {"src/sim/parallel.cc", "src/core/invariants.h"})
    # rng-discipline / thread-confinement apply to first-party code only:
    # tests and benches may time themselves or exercise the pool directly.
    confinement_prefixes: tuple = ("src/", "tools/")

    # Layering: directory under src/ -> directories it may include.
    layers: dict = dataclasses.field(default_factory=lambda: {
        "netbase": {"netbase"},
        "obs": {"obs", "netbase"},
        "bgp": {"bgp", "obs", "netbase"},
        "sim": {"sim", "bgp", "obs", "netbase"},
        "mrt": {"mrt", "bgp", "obs", "netbase"},
        "topology": {"topology", "bgp", "obs", "netbase"},
        "analysis": {"analysis", "obs", "netbase"},
        "igp": {"igp", "sim", "bgp", "obs", "netbase"},
        "core": {"core", "mrt", "sim", "bgp", "obs", "netbase"},
        "workload": {"workload", "core", "igp", "mrt", "sim", "topology",
                     "analysis", "bgp", "obs", "netbase"},
    })
    layering_exceptions: frozenset = frozenset(
        {"core/invariants.h", "core/arena.h"})
    no_exception_layers: frozenset = frozenset({"netbase"})

    # Paths excluded from repo analysis (the analyzer's own deliberately
    # broken fixtures). --must-flag re-enables a specific file.
    exclude_re: re.Pattern = re.compile(r"^tools/lint/detfixtures/")


# --------------------------------------------------------------------------
# Call-graph reachability

def sink_roots(model: Model, cfg: DetConfig) -> list[FunctionInfo]:
    roots = []
    for fn in model.iter_functions():
        in_sink_file = bool(cfg.sink_file_re.search(fn.file))
        name_hit = bool(cfg.sink_name_re.search("::" + fn.qname))
        shard_hit = bool(cfg.shard_merge_name_re.search(fn.qname))
        dir_ok = fn.file.startswith(tuple(cfg.sink_root_dirs))
        if in_sink_file or ((name_hit or shard_hit) and dir_ok):
            roots.append(fn)
    return roots


def reachable_from(model: Model, roots: list[FunctionInfo],
                   stop: "callable" = None) -> dict[str, tuple]:
    """BFS over the call graph. Returns fn-key -> (fn, chain) where chain is
    the qname path from a root. `stop(fn)` prunes propagation below fn."""
    seen: dict[str, tuple] = {}
    work: list[tuple[FunctionInfo, tuple]] = [(r, (r.qname,)) for r in roots]
    while work:
        fn, chain = work.pop()
        key = f"{fn.qname}@{fn.file}:{fn.line}"
        if key in seen:
            continue
        seen[key] = (fn, chain)
        if stop is not None and stop(fn):
            continue
        for call in fn.calls:
            for callee in model.resolve_callees(call.name):
                ckey = f"{callee.qname}@{callee.file}:{callee.line}"
                if ckey not in seen:
                    work.append((callee, chain + (callee.qname,)))
    return seen


# --------------------------------------------------------------------------
# Passes

def _excluded(cfg: DetConfig, path: str, keep: str | None) -> bool:
    if keep is not None and path == keep:
        return False
    return bool(cfg.exclude_re.search(path))


def pass_wallclock_taint(model: Model, cfg: DetConfig,
                         keep: str | None = None) -> list[Finding]:
    findings: list[Finding] = []
    roots = sink_roots(model, cfg)

    def allowed(fn: FunctionInfo) -> bool:
        return (bool(cfg.taint_allow_qname_re.search(fn.qname))
                or bool(cfg.taint_allow_file_re.search(fn.file)))

    reach = reachable_from(model, roots, stop=allowed)
    for fn, chain in reach.values():
        if allowed(fn) and fn.qname != chain[0]:
            continue
        if _excluded(cfg, fn.file, keep):
            continue
        tainted = [c for c in fn.constructs if c.kind in ("wallclock", "rng")]
        if fn.file in cfg.wallclock_impl_files or fn.file in cfg.rng_impl_files:
            tainted = []
        for use in tainted:
            if model.suppressed(fn.file, use.line, "wall-clock-taint"):
                continue
            via = " -> ".join(chain)
            findings.append(Finding(
                "wall-clock-taint", fn.file, use.line, fn.qname,
                f"{use.detail} reachable from {chain[0]}",
                f"{use.detail} feeds an output sink via {via}; digests/"
                "MRT/series bytes must be wall-clock independent "
                "(route wall time through Stability::kWallClock instruments)"))
        # Calls to out-of-model sources (e.g. WallClockNanos when only its
        # declaration is visible).
        for call in fn.calls:
            base = call.name.rsplit("::", 1)[-1]
            if base in cfg.source_call_names and not allowed(fn):
                if fn.file in cfg.wallclock_impl_files:
                    continue
                if model.suppressed(fn.file, call.line, "wall-clock-taint"):
                    continue
                if any(c.line == call.line and c.kind == "wallclock"
                       for c in fn.constructs):
                    continue  # already reported via the construct scan
                via = " -> ".join(chain)
                findings.append(Finding(
                    "wall-clock-taint", fn.file, call.line, fn.qname,
                    f"call to {base} reachable from {chain[0]}",
                    f"{base}() feeds an output sink via {via}"))
    return findings


def pass_unordered_in_output(model: Model, cfg: DetConfig,
                             keep: str | None = None) -> list[Finding]:
    findings: list[Finding] = []
    roots = sink_roots(model, cfg)
    reach = reachable_from(model, roots)
    for fn, chain in reach.values():
        if _excluded(cfg, fn.file, keep):
            continue
        for site in fn.unordered_iters:
            if model.suppressed(fn.file, site.line, "unordered-in-output"):
                continue
            via = " -> ".join(chain)
            findings.append(Finding(
                "unordered-in-output", fn.file, site.line, fn.qname,
                f"unordered iteration over `{site.expr}` reachable from "
                f"{chain[0]}",
                f"iterates an unordered container (`{site.expr}`) on an "
                f"output path ({via}); hash order varies across libstdc++ "
                "versions — sort keys first or use std::map"))
    return findings


def pass_rng_discipline(model: Model, cfg: DetConfig,
                        keep: str | None = None) -> list[Finding]:
    findings: list[Finding] = []
    for path, info in model.files.items():
        if path in cfg.rng_impl_files or _excluded(cfg, path, keep):
            continue
        if not path.startswith(cfg.confinement_prefixes) and path != keep:
            continue
        fns_here = [f for f in model.iter_functions() if f.file == path]
        scoped = [(c, f.qname) for f in fns_here for c in f.constructs]
        scoped += [(c, "") for c in info.constructs]
        for use, qname in scoped:
            if use.kind != "rng":
                continue
            if model.suppressed(path, use.line, "rng-discipline"):
                continue
            findings.append(Finding(
                "rng-discipline", path, use.line, qname, use.detail,
                f"{use.detail} bypasses the seeded SplitMix64/Xoshiro "
                "streams (netbase/rng.h); derive a sub-seed via "
                "ExchangeSubSeed/Rng::Fork instead"))
    return findings


def pass_thread_confinement(model: Model, cfg: DetConfig,
                            keep: str | None = None) -> list[Finding]:
    findings: list[Finding] = []
    for path, info in model.files.items():
        if _excluded(cfg, path, keep):
            continue
        if not path.startswith(cfg.confinement_prefixes) and path != keep:
            continue
        fns_here = [f for f in model.iter_functions() if f.file == path]
        scoped = [(c, f.qname) for f in fns_here for c in f.constructs]
        scoped += [(c, "") for c in info.constructs]
        for use, qname in scoped:
            if use.kind == "thread" and path not in cfg.thread_files:
                if model.suppressed(path, use.line, "thread-confinement"):
                    continue
                findings.append(Finding(
                    "thread-confinement", path, use.line, qname, use.detail,
                    f"{use.detail} outside sim/parallel.cc; use "
                    "sim::ParallelFor over independent partitions"))
            elif use.kind == "atomic" and path not in cfg.atomic_files:
                if model.suppressed(path, use.line, "thread-confinement"):
                    continue
                findings.append(Finding(
                    "thread-confinement", path, use.line, qname, use.detail,
                    f"{use.detail} outside sim/parallel.cc and "
                    "core/invariants.h; shared mutable state breaks "
                    "bit-for-bit reproducibility"))
    return findings


def _layer_of(path: str) -> str | None:
    parts = path.split("/")
    if len(parts) >= 3 and parts[0] == "src":
        return parts[1]
    return None


def pass_include_layering(model: Model, cfg: DetConfig,
                          keep: str | None = None) -> list[Finding]:
    findings: list[Finding] = []
    # Layer-order violations.
    for path, info in model.files.items():
        if _excluded(cfg, path, keep):
            continue
        layer = _layer_of(path)
        if layer is None or layer not in cfg.layers:
            continue
        allowed = cfg.layers[layer]
        for edge in info.includes:
            if (edge.target in cfg.layering_exceptions
                    and layer not in cfg.no_exception_layers):
                continue
            target_dir = edge.target.split("/", 1)[0] \
                if "/" in edge.target else layer
            if target_dir in cfg.layers and target_dir not in allowed:
                if model.suppressed(path, edge.line, "include-layering"):
                    continue
                findings.append(Finding(
                    "include-layering", path, edge.line, "",
                    f"includes {edge.target}",
                    f"layer '{layer}' may not include '{edge.target}' "
                    f"(allowed: {', '.join(sorted(allowed))})"))

    # Include cycles over the file graph (src/-rooted resolution).
    graph: dict[str, list[tuple[str, int]]] = {}
    for path, info in model.files.items():
        if _excluded(cfg, path, keep):
            continue
        edges = []
        for edge in info.includes:
            same_dir = str(pathlib.PurePosixPath(path).parent / edge.target)
            for candidate in (f"src/{edge.target}", same_dir):
                if candidate in model.files:
                    edges.append((candidate, edge.line))
                    break
        graph[path] = edges

    WHITE, GREY, BLACK = 0, 1, 2
    color = {p: WHITE for p in graph}
    reported: set[tuple[str, str]] = set()

    def dfs(node: str, stack: list[str]) -> None:
        color[node] = GREY
        stack.append(node)
        for target, line in graph.get(node, []):
            if color.get(target, BLACK) == GREY:
                cyc = stack[stack.index(target):] + [target]
                edge_id = (node, target)
                if edge_id not in reported:
                    reported.add(edge_id)
                    findings.append(Finding(
                        "include-layering", node, line, "",
                        f"include cycle via {target}",
                        "include cycle: " + " -> ".join(cyc)))
            elif color.get(target) == WHITE:
                dfs(target, stack)
        stack.pop()
        color[node] = BLACK

    for node in sorted(graph):
        if color[node] == WHITE:
            dfs(node, [])
    return findings


PASS_FUNCTIONS = {
    "wall-clock-taint": pass_wallclock_taint,
    "unordered-in-output": pass_unordered_in_output,
    "rng-discipline": pass_rng_discipline,
    "thread-confinement": pass_thread_confinement,
    "include-layering": pass_include_layering,
}


def run_all(model: Model, cfg: DetConfig | None = None,
            checks: list[str] | None = None,
            keep: str | None = None) -> list[Finding]:
    cfg = cfg or DetConfig()
    out: list[Finding] = []
    for check in checks or CHECKS:
        out.extend(PASS_FUNCTIONS[check](model, cfg, keep=keep))
    out.sort(key=lambda f: (f.file, f.line, f.check, f.detail))
    # Deduplicate by identity key (the same function can be reached from
    # several roots).
    seen: set[str] = set()
    unique: list[Finding] = []
    for f in out:
        if f.key() not in seen:
            seen.add(f.key())
            unique.append(f)
    return unique
