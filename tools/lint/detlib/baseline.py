"""Baseline load/diff/write for iri_det findings.

The baseline (tools/lint/det_baseline.json) pins the set of accepted
pre-existing findings by stable identity key (check|file|function|detail —
no line numbers, so unrelated edits don't churn it). `--diff-baseline` makes
the gate blocking for *new* findings from day one while the baseline is
burned down; an empty baseline means the repo is fully clean.
"""

from __future__ import annotations

import json
import pathlib

from .passes import Finding


def load(path: pathlib.Path) -> dict[str, dict]:
    if not path.is_file():
        return {}
    data = json.loads(path.read_text(encoding="utf-8"))
    out = {}
    for item in data.get("findings", []):
        out[item["key"]] = item
    return out


def dump(findings: list[Finding], path: pathlib.Path, frontend: str) -> None:
    data = {
        "comment": ("Accepted pre-existing iri_det findings. Shrink this "
                    "file; never grow it without a review-visible reason."),
        "frontend": frontend,
        "findings": [
            {"key": f.key(), "check": f.check, "file": f.file,
             "function": f.function, "detail": f.detail}
            for f in sorted(findings, key=lambda f: f.key())
        ],
    }
    path.write_text(json.dumps(data, indent=2) + "\n", encoding="utf-8")


def diff(findings: list[Finding], baseline: dict[str, dict]
         ) -> tuple[list[Finding], list[str]]:
    """Returns (new findings not in baseline, baseline keys now fixed)."""
    current = {f.key(): f for f in findings}
    new = [f for key, f in sorted(current.items()) if key not in baseline]
    fixed = [key for key in sorted(baseline) if key not in current]
    return new, fixed
