"""Pure-stdlib C++ model extractor (no libclang required).

Parses every covered file with a tokenizer plus a brace/paren-tracking scope
machine. It is an approximation of the AST — callees are resolved by name,
container types come from a per-file declaration table — but it is built from
the same compile_commands.json closure as the libclang frontend and produces
the same Model, so the passes (and their fixture self-tests) are identical
across frontends.

Known approximations, chosen to over-report rather than under-report:
  * method calls resolve by last name component (every same-named method is
    a candidate callee);
  * a variable declared with an unordered container type anywhere in a file
    marks that name unordered file-wide;
  * `using X = std::unordered_map<...>` aliases are tracked per file, not
    across files.
"""

from __future__ import annotations

import pathlib
import re

from . import compdb
from .model import (CallSite, ConstructUse, FileInfo, FunctionInfo,
                    IncludeEdge, IterSite, Model, rel_posix)

# --------------------------------------------------------------------------
# Scrubbing and suppression collection (line structure preserved).

ALLOW_RE = re.compile(r"iri-det:\s*allow\(([a-z-]+(?:\s*,\s*[a-z-]+)*)\)")


def collect_suppressions(lines: list[str]) -> dict[int, set[str]]:
    out: dict[int, set[str]] = {}
    for i, line in enumerate(lines, start=1):
        m = ALLOW_RE.search(line)
        if not m:
            continue
        rules = {r.strip() for r in m.group(1).split(",")}
        out.setdefault(i, set()).update(rules)
        # A comment-only `iri-det: allow(...)` line suppresses the next line,
        # so long explanations don't have to share the offending line.
        if line.split("//", 1)[0].strip() == "":
            out.setdefault(i + 1, set()).update(rules)
    return out


def scrub(text: str) -> str:
    """Blanks comments, string and char literals, preserving newlines."""

    def blank(match: re.Match) -> str:
        return re.sub(r"[^\n]", " ", match.group(0))

    text = re.sub(r'R"([^(\s]*)\((?:.|\n)*?\)\1"', blank, text)
    text = re.sub(r"/\*(?:.|\n)*?\*/", blank, text)
    text = re.sub(r"//[^\n]*", blank, text)
    text = re.sub(r'"(?:[^"\\\n]|\\.)*"', blank, text)
    text = re.sub(r"'(?:[^'\\\n]|\\.)*'", blank, text)
    return text


# --------------------------------------------------------------------------
# Construct patterns (line-level, applied to scrubbed text, attributed to the
# enclosing function afterwards).

CONSTRUCT_PATTERNS: list[tuple[str, re.Pattern, str]] = [
    ("wallclock", re.compile(
        r"\bWallClockNanos\s*\("), "WallClockNanos()"),
    ("wallclock", re.compile(
        r"\bstd::chrono::(?:system|steady|high_resolution)_clock\b"),
     "std::chrono clock"),
    ("wallclock", re.compile(r"(?<![\w:])time\s*\(\s*(?:nullptr|NULL|0|&)"),
     "time()"),
    ("wallclock", re.compile(r"\bgettimeofday\s*\("), "gettimeofday()"),
    ("wallclock", re.compile(r"\bclock_gettime\s*\("), "clock_gettime()"),
    ("wallclock", re.compile(r"(?<![\w:])clock\s*\(\s*\)"), "clock()"),
    ("rng", re.compile(r"\bstd::random_device\b"), "std::random_device"),
    ("rng", re.compile(r"\bstd::mt19937(?:_64)?\b"), "std::mt19937"),
    ("rng", re.compile(r"\bstd::(?:default_random_engine|minstd_rand0?|"
                       r"ranlux\w+|knuth_b)\b"), "std <random> engine"),
    ("rng", re.compile(r"(?<![\w:])s?rand\s*\("), "rand()/srand()"),
    ("rng", re.compile(r"(?<![\w:])[ed]rand48\s*\("), "*rand48()"),
    ("rng", re.compile(r"#\s*include\s*<random>"), "<random>"),
    ("thread", re.compile(r"\bstd::(?:jthread|thread)\b"),
     "std::thread/std::jthread"),
    ("thread", re.compile(r"\bstd::async\b"), "std::async"),
    ("thread", re.compile(r"\bstd::(?:recursive_|timed_|shared_)?mutex\b"),
     "std::*mutex"),
    ("thread", re.compile(r"\bstd::condition_variable(?:_any)?\b"),
     "std::condition_variable"),
    ("thread", re.compile(r"\bstd::(?:counting_|binary_)?semaphore\b"),
     "std::semaphore"),
    ("thread", re.compile(r"#\s*include\s*<(?:thread|future|mutex|"
                          r"shared_mutex|condition_variable|stop_token|"
                          r"semaphore|barrier|latch)>"), "threading header"),
    ("atomic", re.compile(r"\bstd::atomic(?:_ref|_flag)?\b"), "std::atomic"),
    ("atomic", re.compile(r"#\s*include\s*<atomic>"), "<atomic>"),
]

INCLUDE_RE = re.compile(r'#\s*include\s*"([^"]+)"')

UNORDERED_TYPE_RE = re.compile(
    r"\bstd\s*::\s*unordered_(?:map|set|multimap|multiset)\b")
# `using Alias = std::unordered_map<...>;` / `typedef std::unordered_set<..> A;`
USING_ALIAS_RE = re.compile(
    r"\busing\s+(\w+)\s*=\s*std\s*::\s*unordered_(?:map|set|multimap|multiset)\b")
TYPEDEF_ALIAS_RE = re.compile(
    r"\btypedef\s+std\s*::\s*unordered_(?:map|set|multimap|multiset)\s*<"
    r"[^;]*>\s*(\w+)\s*;")

KEYWORDS = {
    "if", "for", "while", "switch", "return", "sizeof", "alignof", "catch",
    "new", "delete", "throw", "static_cast", "dynamic_cast", "const_cast",
    "reinterpret_cast", "decltype", "noexcept", "static_assert", "assert",
    "defined", "co_await", "co_yield", "co_return", "requires", "alignas",
    "typeid", "else", "do", "case", "default",
}
CLASS_KEYWORDS = {"class", "struct", "union", "enum"}
NOT_FUNCTION_STARTERS = {"if", "for", "while", "switch", "catch", "do",
                         "else", "try"}

TOKEN_RE = re.compile(r"[A-Za-z_]\w*|::|->|.")


class _Scope:
    __slots__ = ("kind", "name", "fn")

    def __init__(self, kind: str, name: str = "", fn: FunctionInfo | None = None):
        self.kind = kind  # namespace | class | function | block
        self.name = name
        self.fn = fn


def _tokenize(scrubbed: str) -> list[tuple[str, int]]:
    tokens: list[tuple[str, int]] = []
    for line_no, line in enumerate(scrubbed.splitlines(), start=1):
        for tok in TOKEN_RE.findall(line):
            if not tok.strip():
                continue
            tokens.append((tok, line_no))
    return tokens


def _qualified_name_before(tokens: list[tuple[str, int]], idx: int) -> str:
    """Walk back from tokens[idx] (exclusive) collecting `a::b::c` / `~Dtor`."""
    parts: list[str] = []
    i = idx - 1
    expect_name = True
    while i >= 0:
        tok = tokens[i][0]
        if expect_name and (tok.isidentifier() or tok == "~"):
            parts.append(tok)
            expect_name = False
            i -= 1
        elif not expect_name and tok == "::":
            parts.append(tok)
            expect_name = True
            i -= 1
        elif not expect_name and tok == "~":
            parts.append(tok)
            i -= 1
            break
        else:
            break
    if not parts:
        return ""
    return "".join(reversed(parts)).lstrip(":")


def _find_matching(tokens: list[tuple[str, int]], open_idx: int,
                   open_tok: str, close_tok: str) -> int:
    depth = 0
    for i in range(open_idx, len(tokens)):
        tok = tokens[i][0]
        if tok == open_tok:
            depth += 1
        elif tok == close_tok:
            depth -= 1
            if depth == 0:
                return i
    return len(tokens) - 1


def _is_ctor_init_brace(tokens: list[tuple[str, int]], stmt_start: int,
                        idx: int) -> bool:
    """True when tokens[idx] == '{' brace-initializes a member in a
    constructor initializer list (`Foo::Foo() : a_{}, b_{1} {`). Those braces
    are expressions: swallowing them keeps the pending function header
    intact so the real body brace still classifies as a definition."""
    if idx <= stmt_start:
        return False
    prev = tokens[idx - 1][0]
    if not prev.isidentifier():
        return False
    depth = 0
    saw_paren_close = False
    colon_after_params = False
    for t, _ in tokens[stmt_start:idx]:
        if t == "(":
            depth += 1
        elif t == ")":
            depth -= 1
            if depth == 0:
                saw_paren_close = True
        elif t == ":" and depth == 0 and saw_paren_close:
            # `::` is a single token, so a bare ':' here really is the
            # initializer-list colon.
            colon_after_params = True
    return colon_after_params


class FileParser:
    """Parses one file into FunctionInfo records + a FileInfo.

    `extra_unordered` carries the program-wide table of names declared with
    unordered container types: members are declared in headers but iterated
    in .cc files, so the table must span files (build_model's first phase
    collects it across the whole covered set).
    """

    def __init__(self, rel: str, text: str,
                 extra_unordered: set[str] | None = None):
        self.rel = rel
        self.raw_lines = text.splitlines()
        self.scrubbed = scrub(text)
        self.scrubbed_lines = self.scrubbed.splitlines()
        self.info = FileInfo(path=rel,
                             suppressions=collect_suppressions(self.raw_lines))
        self.functions: list[FunctionInfo] = []
        # Names from the program-wide table (headers declare, .cc iterates).
        self.global_unordered: set[str] = set(extra_unordered or ())
        # Names declared with an unordered type in *this* file.
        self.unordered_names: set[str] = set()
        self.unordered_aliases: set[str] = set()
        # Names declared with an *ordered* associative type in this file:
        # they override the global table, so `std::map<...> counts_` here is
        # not polluted by an unrelated unordered `counts_` elsewhere.
        self.ordered_names: set[str] = set()

    # -- includes ----------------------------------------------------------

    def _collect_includes(self) -> None:
        for line_no, line in enumerate(self.raw_lines, start=1):
            m = INCLUDE_RE.search(line)
            if m:
                self.info.includes.append(IncludeEdge(m.group(1), line_no))

    # -- declaration table -------------------------------------------------

    @staticmethod
    def _decl_re(type_patterns: list[str]) -> re.Pattern:
        return re.compile(
            r"\b(?:" + "|".join(type_patterns) + r")\b"
            r"(?:\s*<[^;{}]*?>)?"       # template args (no nested braces)
            r"[\s&*]+(\w+)\s*[;={(,)]")

    def _collect_unordered_names(self) -> None:
        text = self.scrubbed
        for m in USING_ALIAS_RE.finditer(text):
            self.unordered_aliases.add(m.group(1))
        for m in TYPEDEF_ALIAS_RE.finditer(text):
            self.unordered_aliases.add(m.group(1))
        unordered = [r"std\s*::\s*unordered_(?:map|set|multimap|multiset)"]
        unordered += [re.escape(a) for a in sorted(
            self.unordered_aliases | self.global_unordered)]
        for m in self._decl_re(unordered).finditer(text):
            name = m.group(1)
            if name not in KEYWORDS:
                self.unordered_names.add(name)
        ordered = [r"std\s*::\s*(?:map|set|multimap|multiset|flat_map|"
                   r"flat_set)"]
        for m in self._decl_re(ordered).finditer(text):
            name = m.group(1)
            if name not in KEYWORDS:
                self.ordered_names.add(name)

    def _effective_unordered(self) -> set[str]:
        local = self.unordered_names | self.unordered_aliases
        return local | (self.global_unordered - self.ordered_names)

    def _is_unordered_expr(self, expr_tokens: list[str]) -> bool:
        text = " ".join(expr_tokens)
        if "unordered_" in text:
            return True
        effective = self._effective_unordered()
        for tok in expr_tokens:
            if tok.isidentifier() and tok in effective:
                return True
        return False

    # -- main token walk ---------------------------------------------------

    def parse(self) -> None:
        self._collect_includes()
        self._collect_unordered_names()
        tokens = _tokenize(self.scrubbed)
        scopes: list[_Scope] = []
        stmt_start = 0  # index of first token of the current statement

        def current_fn() -> FunctionInfo | None:
            for scope in reversed(scopes):
                if scope.kind == "function":
                    return scope.fn
            return None

        def namespace_prefix() -> str:
            parts = [s.name for s in scopes
                     if s.kind in ("namespace", "class") and s.name]
            return "::".join(parts)

        i = 0
        n = len(tokens)
        while i < n:
            tok, line = tokens[i]

            if tok == "{":
                if (current_fn() is None
                        and _is_ctor_init_brace(tokens, stmt_start, i)):
                    i = _find_matching(tokens, i, "{", "}") + 1
                    continue  # statement (the ctor header) continues
                scopes.append(self._classify_brace(
                    tokens, stmt_start, i, current_fn(), namespace_prefix()))
                stmt_start = i + 1
            elif tok == "}":
                if scopes:
                    closed = scopes.pop()
                    if closed.kind == "function" and closed.fn is not None:
                        closed.fn.end_line = line
                        self.functions.append(closed.fn)
                stmt_start = i + 1
            elif tok == ";":
                stmt_start = i + 1
            elif tok == "(":
                fn = current_fn()
                if fn is not None:
                    callee = _qualified_name_before(tokens, i)
                    base = callee.rsplit("::", 1)[-1].lstrip("~")
                    if (callee and base not in KEYWORDS
                            and base not in CLASS_KEYWORDS):
                        fn.calls.append(CallSite(callee, line))
            elif tok == "for":
                fn = current_fn()
                # range-for: for ( decl : expr )
                if fn is not None and i + 1 < n and tokens[i + 1][0] == "(":
                    close = _find_matching(tokens, i + 1, "(", ")")
                    self._scan_range_for(tokens, i + 1, close, fn)
            i += 1

        # Attribute construct uses (line-level regexes) to enclosing spans.
        self._attribute_constructs()

    def _classify_brace(self, tokens: list[tuple[str, int]], stmt_start: int,
                        brace_idx: int, enclosing_fn: FunctionInfo | None,
                        prefix: str) -> _Scope:
        stmt = tokens[stmt_start:brace_idx]
        words = [t for t, _ in stmt]

        # namespace Foo {  /  namespace {
        if "namespace" in words:
            ns_idx = words.index("namespace")
            # C++17 nested form: `namespace iri::obs {`.
            parts: list[str] = []
            j = ns_idx + 1
            while j < len(words) and (words[j].isidentifier()
                                      or words[j] == "::"):
                if words[j].isidentifier():
                    parts.append(words[j])
                j += 1
            return _Scope("namespace", "::".join(parts))

        # class/struct/enum at paren depth 0 (not a parameter declaration).
        depth = 0
        class_name = ""
        saw_class_kw = False
        saw_paren_group = False
        for idx, (t, _) in enumerate(stmt):
            if t == "(":
                depth += 1
                saw_paren_group = True
            elif t == ")":
                depth -= 1
            elif depth == 0 and t in CLASS_KEYWORDS and not saw_paren_group:
                saw_class_kw = True
                j = idx + 1
                # skip `class`, attributes, `enum class`, alignas(...)
                while j < len(stmt) and stmt[j][0] in CLASS_KEYWORDS:
                    j += 1
                if j < len(stmt) and stmt[j][0].isidentifier():
                    class_name = stmt[j][0]
        if saw_class_kw and "=" not in words:
            return _Scope("class", class_name)

        if enclosing_fn is not None:
            return _Scope("block")

        # Function definition? Find the parameter-list paren at depth 0.
        if words and words[0] in NOT_FUNCTION_STARTERS:
            return _Scope("block")
        depth = 0
        eq_seen = False
        name = ""
        name_line = tokens[stmt_start][1] if stmt else tokens[brace_idx][1]
        for idx, (t, ln) in enumerate(stmt):
            if t == "=" and depth == 0:
                # Plain assignment only: `==`, `!=`, `<=`, `>=` (and the
                # second '=' of '==') must not veto e.g. operator== bodies.
                prev_t = stmt[idx - 1][0] if idx > 0 else ""
                next_t = stmt[idx + 1][0] if idx + 1 < len(stmt) else ""
                if (prev_t not in "=!<>" and next_t != "="
                        and prev_t != "operator"):
                    eq_seen = True
            elif t == "(":
                if depth == 0 and not eq_seen and not name:
                    cand = _qualified_name_before(stmt, idx)
                    base = cand.rsplit("::", 1)[-1].lstrip("~")
                    if cand and base not in KEYWORDS:
                        name = cand
                        name_line = ln
                depth += 1
            elif t == ")":
                depth -= 1
            elif t == "operator" and depth == 0 and not name:
                name = "operator"
                name_line = ln
        if name and not eq_seen:
            qname = f"{prefix}::{name}" if prefix and "::" not in name else (
                f"{prefix}::{name}" if prefix else name)
            fn = FunctionInfo(
                qname=qname,
                name=name.rsplit("::", 1)[-1].lstrip("~"),
                file=self.rel, line=name_line)
            return _Scope("function", fn.name, fn)
        return _Scope("block")

    def _scan_range_for(self, tokens: list[tuple[str, int]], open_idx: int,
                        close_idx: int, fn: FunctionInfo) -> None:
        """Detect `for (decl : expr)` with an unordered `expr`."""
        inner = tokens[open_idx + 1:close_idx]
        depth = 0
        colon_at = -1
        for idx, (t, _) in enumerate(inner):
            if t in "([{":
                depth += 1
            elif t in ")]}":
                depth -= 1
            elif t == ":" and depth == 0:
                # `::` arrives as its own token, so a bare ":" is range-for.
                colon_at = idx
                break
            elif t == ";" and depth == 0:
                return  # classic three-clause for
        if colon_at < 0:
            return
        expr_tokens = [t for t, _ in inner[colon_at + 1:]]
        if self._is_unordered_expr(expr_tokens):
            line = inner[colon_at][1] if inner else tokens[open_idx][1]
            fn.unordered_iters.append(
                IterSite(" ".join(expr_tokens)[:80], line))

    def _attribute_constructs(self) -> None:
        spans = sorted(((f.line, f.end_line or f.line, f)
                        for f in self.functions), key=lambda s: (s[0], -s[1]))

        def owner(line: int) -> FunctionInfo | None:
            best: FunctionInfo | None = None
            best_len = None
            for start, end, fn in spans:
                if start <= line <= end:
                    length = end - start
                    if best_len is None or length <= best_len:
                        best, best_len = fn, length
            return best

        for line_no, line in enumerate(self.scrubbed_lines, start=1):
            for kind, pattern, detail in CONSTRUCT_PATTERNS:
                if pattern.search(line):
                    use = ConstructUse(kind, detail, line_no)
                    fn = owner(line_no)
                    if fn is not None:
                        fn.constructs.append(use)
                    else:
                        self.info.constructs.append(use)

        # Iterator-based unordered loops: name.begin()/cbegin() on a known
        # unordered container, inside a function.
        iter_re = None
        effective = self._effective_unordered()
        if effective:
            names = "|".join(re.escape(x) for x in sorted(effective))
            iter_re = re.compile(r"\b(" + names + r")\s*\.\s*c?begin\s*\(")
        if iter_re:
            for line_no, line in enumerate(self.scrubbed_lines, start=1):
                m = iter_re.search(line)
                if m:
                    fn = owner(line_no)
                    if fn is not None:
                        fn.unordered_iters.append(
                            IterSite(m.group(1) + ".begin()", line_no))


# --------------------------------------------------------------------------


def build_model(compdb_path: pathlib.Path, root: pathlib.Path,
                extra_files: list[pathlib.Path] | None = None) -> Model:
    """Build a Model for the compile_commands closure (plus extra_files)."""
    model = Model(frontend="fallback")
    covered = compdb.covered_files(compdb_path, root)
    for path in extra_files or []:
        covered.add(path.resolve())
    texts: list[tuple[str, str]] = []
    for path in sorted(covered):
        rel = rel_posix(path, root)
        if rel is None:
            continue
        try:
            texts.append((rel, path.read_text(encoding="utf-8",
                                              errors="replace")))
        except OSError:
            continue
    # Phase 1: program-wide unordered-name table (members live in headers,
    # iteration happens in .cc files).
    global_unordered: set[str] = set()
    for rel, text in texts:
        probe = FileParser(rel, text)
        probe._collect_unordered_names()
        global_unordered |= probe.unordered_names | probe.unordered_aliases
    # Phase 2: full parse with the shared table.
    for rel, text in texts:
        parser = FileParser(rel, text, extra_unordered=global_unordered)
        parser.parse()
        model.add_file(parser.info)
        for fn in parser.functions:
            model.add_function(fn)
    return model
