"""compile_commands.json loading and coverage computation.

The analyzer is compilation-database driven: the set of files it verifies is
exactly the translation units CMake builds plus the repo headers they reach
through quoted includes. Files outside that closure (dead code, generated
trees) stay the regex lint's responsibility — iri_lint.py asks this module
for the covered set to decide what to delegate.
"""

from __future__ import annotations

import json
import pathlib
import re
import shlex

INCLUDE_RE = re.compile(r'^\s*#\s*include\s*"([^"]+)"', re.MULTILINE)

SOURCE_SUFFIXES = {".cc", ".cpp", ".cxx", ".c"}


class CompDbError(RuntimeError):
    pass


def load_entries(compdb_path: pathlib.Path) -> list[dict]:
    try:
        entries = json.loads(compdb_path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as err:
        raise CompDbError(f"cannot read {compdb_path}: {err}") from err
    if not isinstance(entries, list):
        raise CompDbError(f"{compdb_path}: expected a JSON array")
    return entries


def entry_file(entry: dict) -> pathlib.Path:
    path = pathlib.Path(entry["file"])
    if not path.is_absolute():
        path = pathlib.Path(entry.get("directory", ".")) / path
    return path.resolve()


def entry_args(entry: dict) -> list[str]:
    if "arguments" in entry:
        return list(entry["arguments"])
    return shlex.split(entry.get("command", ""))


def tu_sources(compdb_path: pathlib.Path, root: pathlib.Path) -> list[pathlib.Path]:
    """Translation-unit sources inside the repo, deduplicated, sorted."""
    seen: set[pathlib.Path] = set()
    for entry in load_entries(compdb_path):
        path = entry_file(entry)
        if path.suffix not in SOURCE_SUFFIXES:
            continue
        try:
            path.relative_to(root.resolve())
        except ValueError:
            continue
        seen.add(path)
    return sorted(seen)


def _quoted_includes(path: pathlib.Path) -> list[str]:
    try:
        text = path.read_text(encoding="utf-8", errors="replace")
    except OSError:
        return []
    return INCLUDE_RE.findall(text)


def covered_files(compdb_path: pathlib.Path, root: pathlib.Path,
                  include_dirs: list[pathlib.Path] | None = None
                  ) -> set[pathlib.Path]:
    """TU sources plus the transitive closure of their quoted includes.

    Quoted includes resolve against the repo's convention: relative to src/
    (the single include_directories root) or to the including file's own
    directory. Returns absolute resolved paths.
    """
    root = root.resolve()
    if include_dirs is None:
        include_dirs = [root / "src"]
    work = list(tu_sources(compdb_path, root))
    covered: set[pathlib.Path] = set()
    while work:
        path = work.pop()
        if path in covered or not path.is_file():
            continue
        covered.add(path)
        for target in _quoted_includes(path):
            for base in [path.parent, *include_dirs]:
                candidate = (base / target).resolve()
                if candidate.is_file():
                    if candidate not in covered:
                        work.append(candidate)
                    break
    return covered


def find_compdb(root: pathlib.Path,
                explicit: pathlib.Path | None = None) -> pathlib.Path | None:
    """Locate compile_commands.json: explicit path, then build/, then root."""
    if explicit:
        return explicit if explicit.is_file() else None
    for candidate in (root / "build" / "compile_commands.json",
                      root / "compile_commands.json"):
        if candidate.is_file():
            return candidate
    return None
