"""Frontend-agnostic semantic model shared by the analysis passes.

A Model is a whole-program view assembled from every translation unit in
compile_commands.json plus the repo headers they include. It deliberately
stores *less* than a full AST: only the facts the five determinism passes
need, so both the libclang frontend and the fallback parser can produce it.
"""

from __future__ import annotations

import dataclasses
import pathlib
from typing import Iterable


@dataclasses.dataclass
class CallSite:
    """A call expression inside a function body.

    `name` is the callee as resolved by the frontend: the libclang frontend
    records the fully qualified name of the referenced declaration; the
    fallback frontend records the (possibly partially qualified) spelling at
    the call site. Passes resolve through Model.resolve_callees() which
    accepts both.
    """

    name: str
    line: int


@dataclasses.dataclass
class ConstructUse:
    """A determinism-relevant construct inside a function (or at file scope).

    kind is one of:
      "wallclock"  wall-clock read (WallClockNanos, std::chrono system/steady
                   clocks, time(), gettimeofday, clock_gettime, ...)
      "rng"        ad-hoc RNG (std::mt19937, std::random_device, rand(), ...)
      "thread"     raw threading (std::thread/jthread/async, mutexes,
                   condition variables, semaphores, threading headers)
      "atomic"     std::atomic / <atomic>
    """

    kind: str
    detail: str
    line: int


@dataclasses.dataclass
class IterSite:
    """An iteration over an unordered associative container."""

    expr: str  # source spelling of the iterated expression (best effort)
    line: int


@dataclasses.dataclass
class FunctionInfo:
    qname: str  # qualified name, e.g. "iri::workload::MultiExchangeResult::Digest"
    name: str  # last component
    file: str  # repo-relative posix path
    line: int  # definition start
    end_line: int = 0
    calls: list[CallSite] = dataclasses.field(default_factory=list)
    constructs: list[ConstructUse] = dataclasses.field(default_factory=list)
    unordered_iters: list[IterSite] = dataclasses.field(default_factory=list)


@dataclasses.dataclass
class IncludeEdge:
    target: str  # include path as written, e.g. "bgp/rib.h"
    line: int


@dataclasses.dataclass
class FileInfo:
    path: str  # repo-relative posix path
    includes: list[IncludeEdge] = dataclasses.field(default_factory=list)
    # Constructs at file scope (globals, header-level includes of <thread>...)
    constructs: list[ConstructUse] = dataclasses.field(default_factory=list)
    # line -> set of check ids suppressed via `iri-det: allow(<check>)`.
    suppressions: dict[int, set[str]] = dataclasses.field(default_factory=dict)


class Model:
    """Whole-program index consumed by the passes."""

    def __init__(self, frontend: str):
        self.frontend = frontend
        self.functions: dict[str, FunctionInfo] = {}
        self.by_name: dict[str, list[FunctionInfo]] = {}
        self.files: dict[str, FileInfo] = {}

    # -- construction ------------------------------------------------------

    def add_function(self, fn: FunctionInfo) -> None:
        # Re-parsing the same header from several TUs re-discovers the same
        # inline definitions; keep the first (they are identical text).
        key = f"{fn.qname}@{fn.file}:{fn.line}"
        if key in self.functions:
            return
        self.functions[key] = fn
        self.by_name.setdefault(fn.name, []).append(fn)

    def add_file(self, info: FileInfo) -> None:
        if info.path not in self.files:
            self.files[info.path] = info

    # -- queries -----------------------------------------------------------

    def functions_named(self, name: str) -> list[FunctionInfo]:
        return self.by_name.get(name, [])

    def resolve_callees(self, call_name: str) -> list[FunctionInfo]:
        """Resolve a call-site spelling to candidate definitions.

        Exact qualified-suffix match wins; otherwise fall back to the plain
        last component. Over-approximates for overloads/shared method names,
        which is the right direction for a determinism gate (may report a
        spurious path, never silently misses one).
        """
        last = call_name.rsplit("::", 1)[-1]
        candidates = self.by_name.get(last, [])
        if "::" in call_name:
            exact = [f for f in candidates
                     if f.qname == call_name or f.qname.endswith("::" + call_name)]
            if exact:
                return exact
        return candidates

    def iter_functions(self) -> Iterable[FunctionInfo]:
        return self.functions.values()

    def suppressed(self, path: str, line: int, check: str) -> bool:
        info = self.files.get(path)
        if not info:
            return False
        rules = info.suppressions.get(line, set())
        return check in rules or "all" in rules

    def merge(self, other: "Model") -> None:
        for fn in other.functions.values():
            self.add_function(fn)
        for info in other.files.values():
            self.add_file(info)


def rel_posix(path: str | pathlib.Path, root: pathlib.Path) -> str | None:
    """Repo-relative posix path, or None for files outside the repo."""
    try:
        return pathlib.Path(path).resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return None
