"""detlib: semantic determinism analysis for the iri sim/digest contract.

This package backs tools/lint/iri_det.py. It builds a per-translation-unit
semantic model (function definitions, call sites, range-for loops over
unordered containers, wall-clock / RNG / threading constructs, the #include
graph) from compile_commands.json and runs five verification passes over it:

  wall-clock-taint     no call path from a wall-clock or ad-hoc RNG read into
                       a digest / snapshot / MRT / series-JSONL sink
  unordered-in-output  no unordered-container iteration inside any function
                       reachable from an output sink root
  rng-discipline       every RNG draw goes through the seeded SplitMix64 /
                       Xoshiro streams in netbase/rng.h
  thread-confinement   raw threading primitives confined to sim/parallel.cc
  include-layering     the netbase -> obs -> bgp -> {sim,mrt,...} -> core ->
                       workload include DAG holds, and has no cycles

Two interchangeable frontends produce the model:

  * frontend_clang    libclang AST (exact types and resolved callees); used
                      when the clang python bindings + libclang are present
                      (the CI static-analysis job installs them).
  * frontend_fallback pure-stdlib tokenizer/parser driven by the same
                      compile_commands.json; approximate (name-based callee
                      resolution, regex-assisted type table) but dependency
                      free, so the gate runs everywhere.

Both frontends emit the same Model; the passes are frontend-agnostic, and the
fixture self-test (iri_det.py --self-test) exercises every available frontend
against the same bad/good snippet pairs so they cannot drift apart silently.
"""

from __future__ import annotations

__all__ = [
    "baseline",
    "compdb",
    "frontend_fallback",
    "model",
    "passes",
]

VERSION = "1.0"
