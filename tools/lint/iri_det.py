#!/usr/bin/env python3
"""Semantic determinism analyzer for the iri sim/digest contract.

Where tools/lint/iri_lint.py pattern-matches single lines, this tool builds a
whole-program model from compile_commands.json (function definitions, call
graph, container iteration, include DAG) and verifies the determinism
contract *semantically* (DESIGN.md §11):

  wall-clock-taint     no call path from WallClockNanos()/std::chrono system
                       clocks/rand() into a digest, metrics-snapshot, MRT,
                       trace or series-JSONL sink (Stability::kWallClock
                       instruments in obs/profile.* are the one allowlisted
                       source).
  unordered-in-output  no std::unordered_{map,set} iteration in any function
                       reachable from SnapshotText/SnapshotJson, digest
                       writers, MRT/trace/series emitters or the fixed-order
                       merge code.
  rng-discipline       every RNG draw goes through the seeded SplitMix64 /
                       Xoshiro streams (netbase/rng.h + ExchangeSubSeed);
                       no ad-hoc std::mt19937 / rand() / <random>.
  thread-confinement   std::thread/std::async/mutexes/atomics only in
                       src/sim/parallel.cc (atomics also core/invariants.h).
  include-layering     the netbase -> obs -> bgp -> {sim,mrt,topology,
                       analysis,igp} -> core -> workload layer order holds
                       over the full include DAG, and the DAG is acyclic.

Frontends (--frontend auto|clang|fallback): libclang AST when the clang
python bindings are installed (CI does this), otherwise a dependency-free
parser driven by the same compilation database. Findings are emitted as
machine-readable JSON and diffed against tools/lint/det_baseline.json so the
gate blocks *new* findings from day one.

Suppress a finding (sparingly, with a reason in a nearby comment) with
`iri-det: allow(<check>)` in a comment on the offending line.

Usage:
  iri_det.py [--compdb build/compile_commands.json] [--diff-baseline]
  iri_det.py --write-baseline          re-bless accepted findings
  iri_det.py --self-test               fixture bad/good pairs, every frontend
  iri_det.py --must-flag FILE          exit 0 iff FILE has >=1 finding
                                       (used by the det_gap_flagged ctest)

Exit status: 0 clean (or no new findings with --diff-baseline), 1 findings,
2 internal/usage error.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import re
import sys
import tempfile

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

from detlib import baseline as baselib  # noqa: E402
from detlib import compdb as compdblib  # noqa: E402
from detlib import frontend_clang, frontend_fallback  # noqa: E402
from detlib.passes import CHECKS, DetConfig, Finding, run_all  # noqa: E402

DEFAULT_BASELINE = pathlib.Path(__file__).resolve().parent / "det_baseline.json"
FIXTURES = pathlib.Path(__file__).resolve().parent / "detfixtures"

EXPECT_RE = re.compile(r"det-expect:\s*([a-z-]+)")


# --------------------------------------------------------------------------
# Frontend selection

def pick_frontend(choice: str):
    """Returns (name, build_model callable)."""
    if choice == "clang":
        if not frontend_clang.available():
            why = frontend_clang.import_error() or "no usable libclang"
            raise SystemExit(
                f"iri_det: --frontend clang requested but libclang is "
                f"unavailable ({why})")
        return "clang", frontend_clang.build_model
    if choice == "fallback":
        return "fallback", frontend_fallback.build_model
    # auto
    if frontend_clang.available():
        return "clang", frontend_clang.build_model
    return "fallback", frontend_fallback.build_model


def build_model_resilient(name: str, builder, compdb_path: pathlib.Path,
                          root: pathlib.Path):
    """Run the chosen frontend; if the clang frontend throws (broken
    bindings, unparseable database), degrade to the fallback with a warning
    rather than failing the gate on tooling breakage."""
    try:
        return name, builder(compdb_path, root)
    except Exception as err:  # noqa: BLE001 - deliberate tooling firewall
        if name == "clang":
            print(f"iri_det: clang frontend failed ({err}); "
                  "falling back to the stdlib frontend", file=sys.stderr)
            return "fallback", frontend_fallback.build_model(compdb_path, root)
        raise


# --------------------------------------------------------------------------
# Self-test: analyze the committed fixture tree (bad/good snippet pairs,
# compiled in-tree by tools/lint/detfixtures/CMakeLists.txt) with every
# available frontend and require the det-expect markers to match exactly.

def fixture_sources(fixtures: pathlib.Path) -> list[pathlib.Path]:
    return sorted((fixtures / "src").rglob("*.cc"))


def fixture_files(fixtures: pathlib.Path) -> list[pathlib.Path]:
    return sorted(p for p in (fixtures / "src").rglob("*")
                  if p.suffix in (".cc", ".h"))


def fixture_expectations(fixtures: pathlib.Path) -> dict[str, set[str]]:
    out: dict[str, set[str]] = {}
    for path in fixture_files(fixtures):
        rel = path.relative_to(fixtures).as_posix()
        expected = set(EXPECT_RE.findall(
            path.read_text(encoding="utf-8", errors="replace")))
        bad = expected - set(CHECKS)
        if bad:
            raise SystemExit(f"iri_det: {rel} expects unknown checks {bad}")
        out[rel] = expected
    return out


def synth_compdb(fixtures: pathlib.Path, out_dir: pathlib.Path) -> pathlib.Path:
    entries = []
    for src in fixture_sources(fixtures):
        entries.append({
            "directory": str(fixtures),
            "file": str(src),
            "command": (f"g++ -std=c++20 -I{fixtures / 'src'} "
                        f"-c {src} -o /dev/null"),
        })
    path = out_dir / "compile_commands.json"
    path.write_text(json.dumps(entries, indent=1), encoding="utf-8")
    return path


def self_test() -> int:
    if not FIXTURES.is_dir():
        print(f"iri_det: fixture tree missing at {FIXTURES}", file=sys.stderr)
        return 2
    expectations = fixture_expectations(FIXTURES)
    frontends: list[tuple[str, object]] = [
        ("fallback", frontend_fallback.build_model)]
    if frontend_clang.available():
        frontends.append(("clang", frontend_clang.build_model))

    failures: list[str] = []
    per_frontend_results: dict[str, dict[str, set[str]]] = {}
    with tempfile.TemporaryDirectory(prefix="iri_det_selftest_") as tmp:
        compdb_path = synth_compdb(FIXTURES, pathlib.Path(tmp))
        for name, builder in frontends:
            model = builder(compdb_path, FIXTURES)
            findings = run_all(model, DetConfig())
            got: dict[str, set[str]] = {rel: set() for rel in expectations}
            for f in findings:
                got.setdefault(f.file, set()).add(f.check)
            per_frontend_results[name] = got
            for rel, expected in sorted(expectations.items()):
                actual = got.get(rel, set())
                if actual != expected:
                    missing = expected - actual
                    surplus = actual - expected
                    parts = []
                    if missing:
                        parts.append(f"missing {sorted(missing)}")
                    if surplus:
                        parts.append(f"unexpected {sorted(surplus)}")
                    failures.append(f"[{name}] {rel}: {', '.join(parts)}")

    if len(per_frontend_results) > 1:
        fb = per_frontend_results["fallback"]
        cl = per_frontend_results["clang"]
        for rel in expectations:
            if fb.get(rel, set()) != cl.get(rel, set()):
                failures.append(
                    f"[frontend-drift] {rel}: fallback={sorted(fb.get(rel, set()))} "
                    f"clang={sorted(cl.get(rel, set()))}")

    if failures:
        print("iri_det self-test FAILED:")
        for f in failures:
            print(f"  {f}")
        return 1
    names = ", ".join(name for name, _ in frontends)
    print(f"iri_det self-test passed: {len(expectations)} fixture files, "
          f"frontends: {names}.")
    return 0


# --------------------------------------------------------------------------
# Output

def emit_json(findings: list[Finding], frontend: str,
              out_path: pathlib.Path) -> None:
    data = {
        "tool": "iri_det",
        "frontend": frontend,
        "checks": list(CHECKS),
        "findings": [
            {"key": f.key(), "check": f.check, "file": f.file, "line": f.line,
             "function": f.function, "detail": f.detail, "message": f.message}
            for f in findings
        ],
    }
    out_path.write_text(json.dumps(data, indent=2) + "\n", encoding="utf-8")


def emit_github(findings: list[Finding]) -> None:
    for f in findings:
        msg = f.message.replace("\n", " ")
        print(f"::error file={f.file},line={f.line},title=iri_det "
              f"{f.check}::{msg}")


# --------------------------------------------------------------------------

def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--root", type=pathlib.Path,
                        default=pathlib.Path(__file__).resolve().parents[2])
    parser.add_argument("--compdb", type=pathlib.Path, default=None,
                        help="compile_commands.json (default: ROOT/build/)")
    parser.add_argument("--frontend", choices=("auto", "clang", "fallback"),
                        default="auto")
    parser.add_argument("--check", action="append", choices=CHECKS,
                        help="run only these passes (default: all five)")
    parser.add_argument("--json", type=pathlib.Path, default=None,
                        help="write machine-readable findings to this path")
    parser.add_argument("--baseline", type=pathlib.Path,
                        default=DEFAULT_BASELINE)
    parser.add_argument("--diff-baseline", action="store_true",
                        help="fail only on findings not in the baseline")
    parser.add_argument("--write-baseline", action="store_true",
                        help="re-bless the baseline from current findings")
    parser.add_argument("--github", action="store_true",
                        help="emit GitHub annotations (auto under Actions)")
    parser.add_argument("--must-flag", type=pathlib.Path, default=None,
                        help="exit 0 iff this file has at least one finding "
                             "(fixture-gap regression check)")
    parser.add_argument("--self-test", action="store_true")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()

    root = args.root.resolve()
    compdb_path = compdblib.find_compdb(root, args.compdb)
    if compdb_path is None:
        print("iri_det: no compile_commands.json found (configure with "
              "`cmake -B build -S .` first, or pass --compdb)",
              file=sys.stderr)
        return 2

    name, builder = pick_frontend(args.frontend)
    frontend, model = build_model_resilient(name, builder, compdb_path, root)

    keep = None
    if args.must_flag is not None:
        keep = pathlib.Path(args.must_flag)
        keep = keep.as_posix() if not keep.is_absolute() else \
            keep.resolve().relative_to(root).as_posix()

    findings = run_all(model, DetConfig(), checks=args.check, keep=keep)

    if args.must_flag is not None:
        hits = [f for f in findings if f.file == keep]
        for f in hits:
            print(f)
        if hits:
            print(f"iri_det: {keep} flagged as required "
                  f"({len(hits)} finding(s), frontend={frontend}).")
            return 0
        print(f"iri_det: expected at least one finding in {keep}, got none "
              f"(frontend={frontend})", file=sys.stderr)
        return 1

    if args.json:
        emit_json(findings, frontend, args.json)

    if args.write_baseline:
        baselib.dump(findings, args.baseline, frontend)
        print(f"iri_det: wrote {len(findings)} finding(s) to {args.baseline}")
        return 0

    if args.diff_baseline:
        base = baselib.load(args.baseline)
        new, fixed = baselib.diff(findings, base)
        for key in fixed:
            print(f"iri_det: baseline entry fixed (prune it): {key}")
        for f in new:
            print(f)
        if args.github or os.environ.get("GITHUB_ACTIONS"):
            emit_github(new)
        stats = (f"{len(findings)} total, {len(new)} new, "
                 f"{len(base)} baselined, {len(fixed)} fixed, "
                 f"frontend={frontend}, "
                 f"{len(model.files)} files, {len(model.functions)} functions")
        if new:
            print(f"iri_det: FAIL ({stats}).")
            return 1
        print(f"iri_det: clean vs baseline ({stats}).")
        return 0

    for f in findings:
        print(f)
    if args.github or os.environ.get("GITHUB_ACTIONS"):
        emit_github(findings)
    if findings:
        print(f"iri_det: {len(findings)} finding(s) "
              f"(frontend={frontend}).")
        return 1
    print(f"iri_det: clean ({len(model.files)} files, "
          f"{len(model.functions)} functions, frontend={frontend}).")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
