// One half of a deliberate include cycle (with cycle_b.h). #pragma once
// keeps it compilable; the include-layering pass must still reject the cycle
// because a cyclic include DAG has no valid layer order at all.
#pragma once

#include "bgp/cycle_b.h"

namespace iri::bgp {
struct FxCycleA {
  int a = 0;
};
}  // namespace iri::bgp
