// Clean bgp-layer header for the layering fixtures.
#pragma once

namespace iri::bgp {
struct FxRoute {
  unsigned prefix = 0;
  unsigned length = 0;
};
}  // namespace iri::bgp
