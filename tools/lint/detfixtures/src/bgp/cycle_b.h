// Other half of the deliberate include cycle — see cycle_a.h. The DFS
// reports the back edge, which lives in this file (visited second in sorted
// order).
//
// det-expect: include-layering
#pragma once

#include "bgp/cycle_a.h"

namespace iri::bgp {
struct FxCycleB {
  int b = 0;
};
}  // namespace iri::bgp
