// Translation unit that pulls the layering fixture headers into the model
// (headers are only analyzed when some TU reaches them). core may include
// netbase and bgp, so this file itself is clean — the findings belong to
// layering_bad.h (layer violation) and cycle_b.h (back edge of the cycle).

#include "bgp/cycle_a.h"
#include "netbase/layering_bad.h"
#include "netbase/layering_good.h"

namespace iri::core {

unsigned FxUseLayers() {
  bgp::FxRoute route;
  route.length = 24;
  bgp::FxCycleA a;
  bgp::FxCycleB b;
  return FxPrefixBits(route) + FxHostBits(route.length)
       + static_cast<unsigned>(a.a + b.b);
}

}  // namespace iri::core
