// Bad: a sharded tally that keeps its per-shard partitions in a
// std::unordered_map keyed by shard id and merges them by iterating the map.
// The merge order is the map's bucket order, so the combined answer — which
// is what reaches digests (DESIGN.md §13) — depends on the hash layout. No
// Snapshot/Digest name appears anywhere in the chain: only the per-shard
// aggregation-root rule (Shard*::totals and friends are sinks) catches it.
//
// det-expect: unordered-in-output

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace iri::core {

class FxShardedTally {
 public:
  void Bump(int shard, std::uint64_t n) { per_shard_[shard] += n; }
  std::vector<std::uint64_t> totals() const;

 private:
  std::unordered_map<int, std::uint64_t> per_shard_;
};

std::vector<std::uint64_t> FxShardedTally::totals() const {
  std::vector<std::uint64_t> out;
  for (const auto& kv : per_shard_) {
    out.push_back(kv.second);
  }
  return out;
}

}  // namespace iri::core
