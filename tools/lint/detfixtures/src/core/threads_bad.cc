// Bad: raw threading outside src/sim/parallel.cc. A private thread (or any
// shared-mutable-state primitive) makes event interleaving scheduler- and
// load-dependent, which breaks bit-for-bit reproducibility.
//
// det-expect: thread-confinement

#include <atomic>
#include <mutex>
#include <thread>

namespace iri::core {

std::atomic<int> fx_shared_counter{0};
std::mutex fx_mutex;

void FxSpawn() {
  std::thread worker([] { fx_shared_counter.fetch_add(1); });
  worker.join();
}

}  // namespace iri::core
