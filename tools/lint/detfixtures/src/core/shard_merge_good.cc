// Good: the same sharded tally with its partitions in a dense vector
// indexed by shard id — the merge sweeps shards in fixed 0..N-1 order, a
// pure function of the configuration, the way core::ShardedClassifier sums
// its per-shard counters. Must produce zero findings (guards the per-shard
// aggregation-root rule against false positives on ordered merges).

#include <cstddef>
#include <cstdint>
#include <vector>

namespace iri::core {

class FxOrderedShardedTally {
 public:
  explicit FxOrderedShardedTally(std::size_t shards) : shard_slots_(shards) {}
  void Bump(std::size_t shard, std::uint64_t n) { shard_slots_[shard] += n; }
  std::vector<std::uint64_t> totals() const;

 private:
  std::vector<std::uint64_t> shard_slots_;
};

std::vector<std::uint64_t> FxOrderedShardedTally::totals() const {
  std::vector<std::uint64_t> out;
  for (const std::uint64_t n : shard_slots_) {
    out.push_back(n);
  }
  return out;
}

}  // namespace iri::core
