// Bad: a metrics snapshot (golden-digest input) transitively reads the wall
// clock. The taint travels through a helper, so a line-level regex on the
// sink function would never see it — only call-path analysis does.
//
// det-expect: wall-clock-taint

#include <cstdint>
#include <string>

namespace iri {
// Declaration only (netbase/time.h); the body is outside the fixture model,
// which is exactly the situation the source-call allowlist handles.
std::int64_t WallClockNanos();
}  // namespace iri

namespace iri::obs {

namespace {
std::int64_t StampHelper() { return WallClockNanos(); }
}  // namespace

class FxClockRegistry {
 public:
  std::string SnapshotText() const;
};

std::string FxClockRegistry::SnapshotText() const {
  return std::to_string(StampHelper());
}

}  // namespace iri::obs
