// Good: the same per-cause attribution tally with its slots in a dense
// vector indexed by cause id — ids are a dense allocation-ordered sequence
// (obs::ProvenanceContext mints 1, 2, 3, ...), so indexing id-1 sweeps
// causes in fixed order and the rollup is a pure function of the counts,
// the way obs::ShardProvenance stores its CauseStats. Must produce zero
// findings (guards the aggregation-root rule against false positives on
// id-indexed merges).

#include <cstddef>
#include <cstdint>
#include <vector>

namespace iri::obs {

class FxOrderedProvenanceTally {
 public:
  void Record(std::uint32_t cause_id, std::uint64_t updates) {
    if (cause_id == 0) return;  // null cause: unattributed
    if (per_cause_.size() < cause_id) per_cause_.resize(cause_id);
    per_cause_[cause_id - 1] += updates;
  }
  std::vector<std::uint64_t> totals() const;

 private:
  std::vector<std::uint64_t> per_cause_;
};

std::vector<std::uint64_t> FxOrderedProvenanceTally::totals() const {
  std::vector<std::uint64_t> out;
  for (const std::uint64_t n : per_cause_) {
    out.push_back(n);
  }
  return out;
}

}  // namespace iri::obs
