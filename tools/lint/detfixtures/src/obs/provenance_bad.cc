// Bad: a provenance attribution table that keeps its per-cause tallies in a
// std::unordered_map keyed by cause id and merges them by iterating the map.
// The iteration order is the hash layout, so the combined blast-radius
// rollup — which is what reaches the attribution digest section — depends on
// pointer/seed accidents instead of being a pure function of (seed, config).
// The per-shard aggregation-root rule (Shard*::totals / Shard*::Merge* are
// sinks) must catch it even though no Snapshot/Digest name appears here.
//
// det-expect: unordered-in-output

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace iri::obs {

class FxShardProvenanceTally {
 public:
  void Record(std::uint32_t cause_id, std::uint64_t updates) {
    per_cause_[cause_id] += updates;
  }
  std::vector<std::uint64_t> totals() const;

 private:
  std::unordered_map<std::uint32_t, std::uint64_t> per_cause_;
};

std::vector<std::uint64_t> FxShardProvenanceTally::totals() const {
  std::vector<std::uint64_t> out;
  for (const auto& kv : per_cause_) {
    out.push_back(kv.second);
  }
  return out;
}

}  // namespace iri::obs
