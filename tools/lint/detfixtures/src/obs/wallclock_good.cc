// Good: the snapshot is a pure function of simulated time handed in by the
// caller. No wall-clock taint anywhere on the sink path.

#include <cstdint>
#include <string>

namespace iri::obs {

namespace {
std::int64_t SimStampHelper(std::int64_t sim_ns) { return sim_ns / 1000; }
}  // namespace

class FxSimRegistry {
 public:
  explicit FxSimRegistry(std::int64_t sim_ns) : sim_ns_(sim_ns) {}
  std::string SnapshotText() const;

 private:
  std::int64_t sim_ns_;
};

std::string FxSimRegistry::SnapshotText() const {
  return std::to_string(SimStampHelper(sim_ns_));
}

}  // namespace iri::obs
