// Bad: SnapshotJson renders a std::unordered_map in hash order. The bytes
// land in the golden digests, so this is a portability time bomb: libstdc++
// hash order is stable on one platform (golden runs pass!) but differs
// across standard libraries. Only the reachability pass catches the hazard.
//
// det-expect: unordered-in-output

#include <string>
#include <unordered_map>

namespace iri::obs {

class FxHashTally {
 public:
  void Bump(int key) { ++counts_[key]; }
  std::string SnapshotJson() const;

 private:
  std::unordered_map<int, long> counts_;
};

std::string FxHashTally::SnapshotJson() const {
  std::string out = "{";
  for (const auto& kv : counts_) {
    out += std::to_string(kv.first) + ":" + std::to_string(kv.second) + ",";
  }
  out += "}";
  return out;
}

}  // namespace iri::obs
