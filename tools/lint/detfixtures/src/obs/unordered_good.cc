// Good: the same tally rendered from a std::map — iteration order is the
// key order, deterministic on every standard library. Must produce zero
// findings (guards the analyzer against false positives on ordered maps).

#include <map>
#include <string>

namespace iri::obs {

class FxOrderedTally {
 public:
  void Bump(int key) { ++counts_[key]; }
  std::string SnapshotJson() const;

 private:
  std::map<int, long> counts_;
};

std::string FxOrderedTally::SnapshotJson() const {
  std::string out = "{";
  for (const auto& kv : counts_) {
    out += std::to_string(kv.first) + ":" + std::to_string(kv.second) + ",";
  }
  out += "}";
  return out;
}

}  // namespace iri::obs
