// Good: this path (src/sim/parallel.cc) is the one sanctioned home for raw
// threading — the fork-join pool behind sim::ParallelFor. The same constructs
// that fail in threads_bad.cc must pass here. Zero findings expected.

#include <atomic>
#include <thread>
#include <vector>

namespace iri::sim {

void FxPool(int workers) {
  std::atomic<int> done{0};
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    pool.emplace_back([&done] { done.fetch_add(1); });
  }
  for (auto& t : pool) t.join();
}

}  // namespace iri::sim
