// Bad: an ad-hoc std::mt19937 draw. Mersenne-twister seeding and the
// standard distributions are not specified tightly enough to reproduce
// across standard libraries, and a privately constructed engine bypasses the
// ExchangeSubSeed/Rng::Fork stream discipline entirely.
//
// det-expect: rng-discipline

#include <random>

namespace iri::sim {

double FxJitter(unsigned seed) {
  std::mt19937 engine(seed);
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  return dist(engine);
}

}  // namespace iri::sim
