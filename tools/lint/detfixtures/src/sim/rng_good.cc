// Good: draws come from a seeded SplitMix64-style stream handed down by the
// caller — the shape netbase/rng.h prescribes. Must produce zero findings.

#include <cstdint>

namespace iri::sim {

class FxStream {
 public:
  constexpr explicit FxStream(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t Next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

double FxJitterSeeded(FxStream& stream) {
  return static_cast<double>(stream.Next() >> 11) * 0x1.0p-53;
}

}  // namespace iri::sim
