// The gap this fixture documents
// ------------------------------
// The repo's dynamic determinism gate (tests/golden_run_test.cc) replays
// scenarios and byte-compares digests — including at 1/2/4/N threads. That
// catches *interleaving* nondeterminism, but it cannot catch hash-order
// nondeterminism: libstdc++'s unordered_map iterates in a fixed order for a
// fixed key sequence and bucket count, identically on every rerun of the
// same binary. FxGapTally::Digest below therefore produces byte-identical
// output run after run on the machine that blesses the goldens — and
// different bytes on a standard library with another hash/bucket scheme
// (libc++, MSVC), or after a libstdc++ upgrade changes growth policy. A
// golden digest blessed today goes stale the day the toolchain moves.
//
// tests/det_gap_fixture_test.cc proves the first half (rerun-stability, i.e.
// golden runs keep passing), and the det_gap_flagged ctest proves the second
// half: `iri_det.py --must-flag <this file>` must report unordered-in-output
// here, closing statically the hole the dynamic suite cannot see.
//
// det-expect: unordered-in-output

#include "digest_gap.h"

#include <algorithm>
#include <map>

namespace iri::workload {

void FxGapTally::Count(const std::vector<std::uint32_t>& prefixes) {
  for (auto p : prefixes) ++tally_[p];
}

std::string FxGapTally::Digest() const {
  std::string out = "# fx gap digest v1\n";
  for (const auto& [prefix, count] : tally_) {
    out += std::to_string(prefix) + "=" + std::to_string(count) + "\n";
  }
  return out;
}

std::string FxGapTally::SortedDigest() const {
  std::map<std::uint32_t, std::uint32_t> sorted(tally_.begin(), tally_.end());
  std::string out = "# fx gap digest v1\n";
  for (const auto& [prefix, count] : sorted) {
    out += std::to_string(prefix) + "=" + std::to_string(count) + "\n";
  }
  return out;
}

}  // namespace iri::workload
