// Deliberately nondeterministic digest fixture — see digest_gap.cc for the
// full story of the gap between golden-run testing and static analysis.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace iri::workload {

// Tallies prefixes into a std::unordered_map and renders `prefix=count`
// lines in hash order. iri_det must flag Digest() (unordered-in-output); the
// golden-run suite cannot, because hash order is reproducible on any
// *single* standard library.
class FxGapTally {
 public:
  void Count(const std::vector<std::uint32_t>& prefixes);

  // Hash-order rendering: the determinism bug.
  std::string Digest() const;

  // The corrected rendering: same data, key-sorted before emission.
  std::string SortedDigest() const;

 private:
  std::unordered_map<std::uint32_t, std::uint32_t> tally_;
};

}  // namespace iri::workload
