// Good: netbase including only netbase. Zero findings expected.
#pragma once

namespace iri {
inline unsigned FxHostBits(unsigned length) { return 32u - length; }
}  // namespace iri
