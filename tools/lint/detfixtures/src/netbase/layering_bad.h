// Bad: netbase is the bottom layer and may include nothing above itself.
// Reaching up into bgp inverts the netbase -> obs -> bgp -> ... -> workload
// order the whole build hangs off.
//
// det-expect: include-layering
#pragma once

#include "bgp/fxroute.h"

namespace iri {
inline unsigned FxPrefixBits(const bgp::FxRoute& r) { return r.length; }
}  // namespace iri
