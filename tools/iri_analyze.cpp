// iri_analyze — offline analysis of an MRT update log (the paper's §2
// decode-and-analyze workflow).
//
//   iri_analyze LOG.mrt [--bins=10m|1h] [--interarrival] [--spectrum]
//
// Always prints the taxonomy report and per-peer totals; optional sections
// add the inter-arrival histogram (Figure 8 style) and the power spectrum
// of hourly aggregates (Figure 5 style).
#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "analysis/series.h"
#include "analysis/spectrum.h"
#include "core/monitor.h"
#include "core/report.h"
#include "core/stats.h"
#include "mrt/log.h"

using namespace iri;

int main(int argc, char** argv) {
  const char* path = nullptr;
  bool want_interarrival = false, want_spectrum = false;
  Duration bin_width = Duration::Minutes(10);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--interarrival") == 0) {
      want_interarrival = true;
    } else if (std::strcmp(argv[i], "--spectrum") == 0) {
      want_spectrum = true;
    } else if (std::strcmp(argv[i], "--bins=1h") == 0) {
      bin_width = Duration::Hours(1);
    } else if (std::strcmp(argv[i], "--bins=10m") == 0) {
      bin_width = Duration::Minutes(10);
    } else if (argv[i][0] != '-') {
      path = argv[i];
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::printf("usage: iri_analyze LOG.mrt [--bins=10m|1h] "
                  "[--interarrival] [--spectrum]\n");
      return 0;
    }
  }
  if (path == nullptr) {
    std::fprintf(stderr, "iri_analyze: an MRT log path is required\n");
    return 2;
  }

  mrt::Reader reader(path);
  if (!reader.ok()) {
    std::fprintf(stderr, "iri_analyze: cannot read %s\n", path);
    return 1;
  }

  core::ExchangeMonitor monitor;
  core::CategoryCounts counts;
  core::TimeBinner binner(bin_width);
  core::InterArrivalHistogram interarrival;
  struct PeerRow {
    std::uint64_t announce = 0, withdraw = 0;
  };
  std::map<std::pair<bgp::PeerId, bgp::Asn>, PeerRow> peers;
  TimePoint last_time;

  monitor.AddSink([&](const core::ClassifiedEvent& ev) {
    counts.Add(ev);
    if (core::IsInstability(ev.category)) binner.Add(ev.event.time);
    if (want_interarrival) interarrival.Add(ev);
    auto& row = peers[{ev.event.peer, ev.event.peer_asn}];
    if (ev.event.is_withdraw) {
      ++row.withdraw;
    } else {
      ++row.announce;
    }
    last_time = ev.event.time;
  });

  const std::uint64_t updates = monitor.Replay(reader);
  std::printf("%s: %llu UPDATE messages, %llu prefix events, "
              "%llu CRC failures, span %s\n\n",
              path, static_cast<unsigned long long>(updates),
              static_cast<unsigned long long>(monitor.events_seen()),
              static_cast<unsigned long long>(reader.crc_failures()),
              FormatScenarioTime(last_time).c_str());

  std::printf("=== taxonomy ===\n%s\n",
              core::FormatCategoryReport(counts).c_str());

  std::printf("=== per-peer totals ===\n");
  std::vector<std::vector<std::string>> rows;
  for (const auto& [key, row] : peers) {
    rows.push_back({"peer-" + std::to_string(key.first),
                    "AS" + std::to_string(key.second),
                    std::to_string(row.announce),
                    std::to_string(row.withdraw)});
  }
  std::printf("%s\n", core::FormatTable({"peer", "asn", "announce",
                                         "withdraw"},
                                        rows)
                          .c_str());

  if (want_interarrival) {
    interarrival.Finalize();
    const auto summary = interarrival.Summarize();
    const auto& labels = core::InterArrivalHistogram::BinLabels();
    std::printf("=== inter-arrival histograms (median daily proportion) "
                "===\n");
    std::printf("%6s", "bin");
    for (const auto cat : core::PrefixPeerDaily::kTracked) {
      std::printf(" %8s", core::ToString(cat));
    }
    std::printf("\n");
    for (std::size_t bin = 0; bin < labels.size(); ++bin) {
      std::printf("%6s", labels[bin]);
      for (std::size_t cat = 0; cat < 4; ++cat) {
        std::printf(" %8.3f", summary[cat][bin].median);
      }
      std::printf("\n");
    }
    std::printf("\n");
  }

  if (want_spectrum) {
    // Rebin instability hourly, detrend the log, print top peaks.
    core::TimeBinner hourly(Duration::Hours(1));
    mrt::Reader again(path);
    core::ExchangeMonitor monitor2;
    monitor2.AddSink([&hourly](const core::ClassifiedEvent& ev) {
      if (core::IsInstability(ev.category)) hourly.Add(ev.event.time);
    });
    monitor2.Replay(again);
    hourly.ExtendTo(last_time);
    const auto& bins = hourly.bins();
    if (bins.size() >= 96) {
      analysis::Series x(bins.begin(), bins.end());
      const analysis::Series d = analysis::DetrendedLog(x);
      auto spec =
          analysis::CorrelogramSpectrum(d, std::min<std::size_t>(d.size() / 3, 512));
      auto peaks = analysis::FindPeaks(spec, 5);
      std::printf("=== spectrum of hourly instability (top peaks) ===\n");
      for (const auto& p : peaks) {
        std::printf("  period %7.1f h (%5.2f d)  power %.3g\n",
                    1.0 / p.frequency, 1.0 / p.frequency / 24.0, p.power);
      }
    } else {
      std::printf("=== spectrum skipped: need >= 4 days of data ===\n");
    }
  }
  return 0;
}
